"""The shared epoch/mini-batch training loop.

Every method in this package — EHNA, the skip-gram baselines, LINE, HTNE —
trains the same way: shuffle an index space, walk it in mini-batches, record
a per-epoch mean loss, repeat.  :class:`Trainer` owns that loop once, so the
methods only supply a ``step`` function (one mini-batch of work → loss) and
optionally regenerate their index space per epoch (skip-gram re-expands its
walk corpus into fresh pairs; LINE re-draws its weighted edge sample).

Epoch-end behavior is extensible through :class:`TrainerCallback`; built-ins
cover the common cases: :class:`VerboseCallback` (loss logging, what
``EHNA.fit(verbose=True)`` routes through), :class:`EarlyStopping`, and
:class:`LambdaCallback` for ad-hoc eval probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


@dataclass
class TrainState:
    """What callbacks see at the end of every epoch."""

    #: 1-based index of the epoch that just finished.
    epoch: int
    #: Total number of epochs requested.
    epochs: int
    #: Batch-size-weighted mean loss of the finished epoch.
    mean_loss: float
    #: Per-epoch mean losses so far (including this epoch).
    history: list[float] = field(default_factory=list)
    #: Label of the method being trained (for log lines).
    name: str = "train"


class TrainerCallback:
    """Epoch-end hook; return ``True`` from ``on_epoch_end`` to stop early.

    ``on_train_begin`` fires once per :meth:`Trainer.run`, so stateful
    callbacks (e.g. :class:`EarlyStopping`) reset there and one instance can
    be reused across runs — ``fit`` then ``partial_fit``, say.
    """

    def on_train_begin(self) -> None:
        """Called once before the first epoch of every run."""

    def on_epoch_end(self, state: TrainState) -> bool | None:
        """Called after every epoch with the current :class:`TrainState`."""
        return None


class VerboseCallback(TrainerCallback):
    """Print one loss line per epoch (``[name] epoch i/N loss=…``)."""

    def on_epoch_end(self, state: TrainState) -> bool | None:
        print(
            f"[{state.name}] epoch {state.epoch}/{state.epochs} "
            f"loss={state.mean_loss:.4f}"
        )
        return None


class EarlyStopping(TrainerCallback):
    """Stop when the epoch loss has not improved by ``min_delta`` for
    ``patience`` consecutive epochs."""

    def __init__(self, patience: int = 2, min_delta: float = 0.0):
        check_positive("patience", patience)
        if min_delta < 0:
            raise ValueError(f"min_delta must be non-negative, got {min_delta}")
        self.patience = patience
        self.min_delta = min_delta
        self.best = np.inf
        self.stale = 0

    def on_train_begin(self) -> None:
        # Fresh baseline per run: fit's converged loss must not abort a
        # later partial_fit whose fresh-edge losses start higher.
        self.best = np.inf
        self.stale = 0

    def on_epoch_end(self, state: TrainState) -> bool | None:
        if state.mean_loss < self.best - self.min_delta:
            self.best = state.mean_loss
            self.stale = 0
            return None
        self.stale += 1
        return self.stale >= self.patience


class LambdaCallback(TrainerCallback):
    """Wrap a plain function ``f(state) -> bool | None`` (eval probes etc.)."""

    def __init__(self, fn):
        self.fn = fn

    def on_epoch_end(self, state: TrainState) -> bool | None:
        return self.fn(state)


class Trainer:
    """Run ``epochs`` passes of mini-batch SGD over an index space.

    Parameters
    ----------
    epochs, batch_size:
        The loop dimensions.
    rng:
        Shuffling (and ``epoch_items``) randomness; shared with the caller so
        one seed reproduces the whole run.
    callbacks:
        :class:`TrainerCallback` instances invoked after every epoch, in
        order.  Any callback returning ``True`` ends training early.
    shuffle:
        Shuffle the index space before batching each epoch (disable when the
        items are already randomized, e.g. pre-shuffled skip-gram pairs).
    name:
        Label surfaced in :class:`TrainState` for log lines.
    """

    def __init__(
        self,
        epochs: int,
        batch_size: int,
        rng=None,
        callbacks=(),
        shuffle: bool = True,
        name: str = "train",
    ):
        check_positive("epochs", epochs)
        check_positive("batch_size", batch_size)
        for cb in callbacks:
            if not hasattr(cb, "on_epoch_end"):
                raise TypeError(f"callback {cb!r} lacks an on_epoch_end hook")
        self.epochs = epochs
        self.batch_size = batch_size
        self.rng = ensure_rng(rng)
        self.callbacks = list(callbacks)
        self.shuffle = shuffle
        self.name = name

    def run(self, step, num_items: int | None = None, epoch_items=None) -> list[float]:
        """Drive the loop; returns the per-epoch mean losses.

        ``step(indices)`` processes one mini-batch (a 1-D int array into the
        index space) and returns its mean loss.  The index space is either
        ``np.arange(num_items)`` or, when ``epoch_items`` is given, the array
        returned by ``epoch_items(epoch, rng)`` at the start of every epoch —
        which lets methods resample their training set per epoch.

        Epoch means are batch-size weighted, so a short trailing batch does
        not skew the reported loss.
        """
        if (num_items is None) == (epoch_items is None):
            raise ValueError("provide exactly one of num_items or epoch_items")
        if num_items is not None:
            check_positive("num_items", num_items)
            items = np.arange(num_items)
        for cb in self.callbacks:
            begin = getattr(cb, "on_train_begin", None)  # duck-typed callbacks
            if begin is not None:
                begin()
        history: list[float] = []
        for epoch in range(self.epochs):
            if epoch_items is not None:
                items = np.asarray(epoch_items(epoch, self.rng))
                if items.size == 0:
                    raise ValueError(f"epoch_items returned no items at epoch {epoch}")
            if self.shuffle:
                self.rng.shuffle(items)
            total, count = 0.0, 0
            for lo in range(0, items.size, self.batch_size):
                batch = items[lo : lo + self.batch_size]
                total += float(step(batch)) * batch.size
                count += batch.size
            mean_loss = total / count
            history.append(mean_loss)
            state = TrainState(
                epoch=epoch + 1,
                epochs=self.epochs,
                mean_loss=mean_loss,
                history=history,
                name=self.name,
            )
            stop = False
            for cb in self.callbacks:  # every callback runs, even after a stop vote
                if cb.on_epoch_end(state):
                    stop = True
            if stop:
                break
        return history


def with_verbose(callbacks, verbose: bool):
    """The caller's callbacks, plus a :class:`VerboseCallback` if asked."""
    merged = list(callbacks)
    if verbose:
        merged.append(VerboseCallback())
    return merged
