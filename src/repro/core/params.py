"""State isolation: the flat parameter vector behind data-parallel training.

The model's trainable state normally lives scattered across layer objects —
an ``Embedding`` table here, LSTM gate matrices there — each stepped by its
own :class:`~repro.nn.optim.Adam`.  That layout is fine in one process but
opaque to everything outside it: a worker cannot snapshot it, a leader
cannot place it in shared memory, a future BLAS/numba backend cannot treat
it as one buffer.

This module flattens that state into a single contiguous vector while the
layer objects keep working untouched:

- :class:`FlatParams` concatenates named parameter tensors into one 1-D
  buffer and *rebinds* each tensor's ``data`` to a view of it, so every
  forward/backward in the existing model reads and writes the flat buffer
  directly.  ``rebind`` relocates the views onto any same-shape buffer —
  including a shared-memory segment, which is how the sync trainer shares
  one copy of the parameters with every worker.
- :class:`ParamGroup` names a contiguous slice of the vector with its own
  learning rate and clip, mirroring the model's embedding/network optimizer
  split.
- :class:`FlatAdam` steps the whole vector from an explicit gradient vector
  argument, group by group, with update arithmetic elementwise-identical to
  :class:`~repro.nn.optim.Adam` — the flat step is bitwise-equal to the
  per-tensor steps it replaces (see ``tests/core/test_params.py``).

With this seam, a worker's training state is exactly (graph handle, flat
parameter snapshot, RNG seed) — the contract ``repro/parallel`` builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ParamSpec:
    """One named tensor's placement inside the flat vector."""

    name: str
    shape: tuple
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class FlatParams:
    """Named parameter tensors flattened into one contiguous vector.

    Built from ``(name, tensor)`` pairs (order defines the layout).  Every
    tensor's ``data`` becomes a reshaped view of the flat buffer, so the
    model keeps training through its usual layer objects while snapshots,
    shared-memory placement and flat optimizer steps all see one array.

    All tensors must share one dtype — guaranteed by the precision policy,
    which allocates the whole model in a single floating dtype.
    """

    def __init__(self, named_tensors):
        named_tensors = list(named_tensors)
        if not named_tensors:
            raise ValueError("FlatParams needs at least one tensor")
        dtypes = {t.data.dtype for _, t in named_tensors}
        if len(dtypes) != 1:
            raise ValueError(f"parameters span multiple dtypes: {sorted(map(str, dtypes))}")
        self._tensors = [t for _, t in named_tensors]
        specs = []
        offset = 0
        for name, t in named_tensors:
            size = int(t.data.size)
            specs.append(ParamSpec(str(name), tuple(t.data.shape), offset, offset + size))
            offset += size
        self._specs = tuple(specs)
        buffer = np.empty(offset, dtype=dtypes.pop())
        for spec, t in zip(self._specs, self._tensors):
            buffer[spec.start : spec.stop] = t.data.ravel()
        self.rebind(buffer)

    # -- layout --------------------------------------------------------
    @property
    def specs(self) -> tuple:
        return self._specs

    @property
    def size(self) -> int:
        return self._specs[-1].stop

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def data(self) -> np.ndarray:
        """The flat buffer itself (the live parameters, not a copy)."""
        return self._data

    def view(self, name: str) -> np.ndarray:
        """The named tensor's slice of the flat buffer, in tensor shape."""
        for spec in self._specs:
            if spec.name == name:
                return self._data[spec.start : spec.stop].reshape(spec.shape)
        raise KeyError(f"no parameter named {name!r}")

    def slice_of(self, name: str) -> slice:
        """The flat-vector index range a named tensor occupies."""
        for spec in self._specs:
            if spec.name == name:
                return slice(spec.start, spec.stop)
        raise KeyError(f"no parameter named {name!r}")

    # -- state transfer ------------------------------------------------
    def snapshot(self) -> np.ndarray:
        """A private copy of the current parameter values."""
        return self._data.copy()

    def load(self, vector: np.ndarray) -> None:
        """Copy ``vector`` into the live buffer (shapes/dtypes must match)."""
        vector = np.asarray(vector)
        if vector.shape != self._data.shape or vector.dtype != self._data.dtype:
            raise ValueError(
                f"expected shape {self._data.shape} dtype {self._data.dtype}, "
                f"got shape {vector.shape} dtype {vector.dtype}"
            )
        self._data[...] = vector

    def rebind(self, buffer: np.ndarray) -> None:
        """Relocate every tensor's ``data`` onto views of ``buffer``.

        ``buffer`` keeps the current values' layout but may live anywhere —
        notably inside a shared-memory segment (leader: writable view;
        worker: read-only view).  The previous buffer is abandoned; call
        ``rebind(self.data.copy())`` to re-privatize before releasing a
        shared segment.
        """
        buffer = np.asarray(buffer)
        expected = self._specs[-1].stop
        if buffer.shape != (expected,):
            raise ValueError(f"expected a flat buffer of shape ({expected},), got {buffer.shape}")
        if self._tensors[0].data.dtype != buffer.dtype:
            raise ValueError(
                f"buffer dtype {buffer.dtype} != parameter dtype {self._tensors[0].data.dtype}"
            )
        self._data = buffer
        for spec, t in zip(self._specs, self._tensors):
            t.data = buffer[spec.start : spec.stop].reshape(spec.shape)

    # -- gradients -----------------------------------------------------
    def grad_vector(self) -> np.ndarray:
        """The tensors' accumulated gradients as one flat vector.

        Missing gradients contribute zeros — the same effective update the
        per-tensor Adam produces for a parameter that did get a (dense,
        possibly all-zero) gradient, which is what the fused training step
        always yields.
        """
        out = np.zeros(self.size, dtype=self._data.dtype)
        for spec, t in zip(self._specs, self._tensors):
            if t.grad is not None:
                out[spec.start : spec.stop] = t.grad.ravel()
        return out

    def __repr__(self) -> str:
        return f"FlatParams(tensors={len(self._specs)}, size={self.size}, dtype={self.dtype})"


@dataclass(frozen=True)
class ParamGroup:
    """A contiguous slice of the flat vector with its own hyperparameters."""

    name: str
    start: int
    stop: int
    lr: float
    clip: float | None = None


class FlatAdam:
    """Adam over the flat vector, one moment pair per :class:`ParamGroup`.

    The update arithmetic is copied operation-for-operation from
    :class:`~repro.nn.optim.Adam` (same in-place moment updates, same
    Python-scalar coefficients, same bias correction), so stepping the flat
    vector is bitwise-identical to stepping the underlying tensors with
    per-tensor optimizers — Adam is elementwise, and concatenation does not
    change element order within a tensor.

    Unlike :class:`~repro.nn.optim.Adam`, the gradient arrives as an
    explicit argument (the reduced, shard-averaged vector in sync training)
    rather than being read off ``p.grad`` — the whole point of the seam.
    """

    def __init__(
        self,
        flat: FlatParams,
        groups,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        groups = list(groups)
        if not groups:
            raise ValueError("FlatAdam needs at least one parameter group")
        prev = 0
        for grp in groups:
            check_positive(f"lr[{grp.name}]", grp.lr)
            if grp.start != prev:
                raise ValueError(
                    f"group {grp.name!r} starts at {grp.start}, expected {prev} "
                    "(groups must tile the vector contiguously)"
                )
            prev = grp.stop
        if prev != flat.size:
            raise ValueError(f"groups cover [0, {prev}) but the vector has size {flat.size}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.flat = flat
        self.groups = tuple(groups)
        self.betas = betas
        self.eps = eps
        self._m = [np.zeros(grp.stop - grp.start, dtype=flat.dtype) for grp in groups]
        self._v = [np.zeros(grp.stop - grp.start, dtype=flat.dtype) for grp in groups]
        self._t = 0

    @property
    def t(self) -> int:
        """Number of steps taken (Adam's bias-correction clock)."""
        return self._t

    def step(self, grad: np.ndarray) -> None:
        """Apply one Adam update of the flat vector from ``grad``."""
        grad = np.asarray(grad)
        if grad.shape != (self.flat.size,) or grad.dtype != self.flat.dtype:
            raise ValueError(
                f"expected grad of shape ({self.flat.size},) dtype {self.flat.dtype}, "
                f"got shape {grad.shape} dtype {grad.dtype}"
            )
        self._t += 1
        b1, b2 = self.betas
        correct1 = 1.0 - b1**self._t
        correct2 = 1.0 - b2**self._t
        data = self.flat.data
        for grp, m, v in zip(self.groups, self._m, self._v):
            g = grad[grp.start : grp.stop]
            if grp.clip is not None:
                g = np.clip(g, -grp.clip, grp.clip)
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / correct1
            v_hat = v / correct2
            data[grp.start : grp.stop] -= grp.lr * m_hat / (np.sqrt(v_hat) + self.eps)
