"""The paper's two temporal attention mechanisms (Eq. 3 and Eq. 4).

Both are parameter-free softmaxes whose logits combine

- *temporal relevance*: ``1 / Σ_{(u,v) in r} t_(u,v)`` — a node touched by
  recent and frequent walk edges has a large time-sum, hence a small
  multiplier on its distance, hence a logit near zero, hence high attention;
- *contextual relevance*: the squared Euclidean distance between the
  candidate (node embedding ``e_v`` in Eq. 3, walk representation ``h_r`` in
  Eq. 4) and the target embedding ``e_x``.

The coefficients depend on the embeddings being learned, so they are computed
with autograd tensors and gradients flow through them.

Timestamps enter on the graph's [0, 1] normalized scale (see DESIGN.md);
time-sums are clamped below by ``eps`` to keep ``1/Σt`` finite for the oldest
edges.

Both mechanisms are precision-transparent: every array they build derives
from the incoming ``dist``/``time_sums``/``valid`` arrays with Python-scalar
coefficients, so the policy dtype the walk batch carries (``float64``
reference or ``float32`` fast mode) flows through the softmaxes unchanged —
``_MASK_LOGIT`` (-1e9) is representable in single precision and the padded
positions' ``exp`` underflows to exactly 0 either way.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, softmax

#: Additive logit for padded positions — drives their softmax weight to zero.
_MASK_LOGIT = -1e9


def masked_softmax(logits: Tensor, valid: np.ndarray, axis: int = -1) -> Tensor:
    """Softmax over ``axis`` with invalid positions forced to weight 0."""
    penalty = Tensor((1.0 - valid) * _MASK_LOGIT)
    return softmax(logits + penalty, axis=axis)


def inverse_time_sums(time_sums: np.ndarray, eps: float) -> np.ndarray:
    """``1 / max(Σt, eps)`` — the temporal factor of Eq. 3."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    return 1.0 / np.maximum(time_sums, eps)


def node_attention(
    dist: Tensor, time_sums: np.ndarray, valid: np.ndarray, eps: float
) -> Tensor:
    """Eq. 3: attention over the nodes of each walk.

    Parameters
    ----------
    dist:
        ``(W, T)`` squared distances ``||e_x - e_v||²`` per walk position.
    time_sums:
        ``(W, T)`` per-position sums of normalized walk-edge timestamps.
    valid:
        ``(W, T)`` 0/1 mask of real (non-padding) positions.
    eps:
        Lower clamp for the time sums.
    """
    inv = inverse_time_sums(time_sums, eps)
    logits = dist * Tensor(-inv)
    return masked_softmax(logits, valid, axis=1)


def walk_factors(time_sums: np.ndarray, valid: np.ndarray, eps: float) -> np.ndarray:
    """Eq. 4's per-walk temporal factor ``(1/|r|) Σ_v 1/Σt_v``.

    ``time_sums``/``valid`` are the same ``(W, T)`` arrays used for node
    attention; the result has shape ``(W,)``.
    """
    inv = inverse_time_sums(time_sums, eps) * valid
    lengths = np.maximum(valid.sum(axis=1), 1.0)
    return inv.sum(axis=1) / lengths


def walk_attention(dist: Tensor, factors: np.ndarray) -> Tensor:
    """Eq. 4: attention over the ``k`` walks of each target.

    ``dist`` is ``(B, k)`` squared distances ``||e_x - h_r||²`` and
    ``factors`` the matching ``(B, k)`` temporal factors.
    """
    logits = dist * Tensor(-np.asarray(factors))
    return softmax(logits, axis=1)


def uniform_attention(valid: np.ndarray) -> np.ndarray:
    """Attention-free weights: 1 on valid positions (EHNA-NA, fallbacks).

    Dtype-preserving for floating masks, so a ``float32`` walk batch keeps
    its policy dtype; non-float masks coerce to the ``float64`` default.
    """
    valid = np.asarray(valid)
    if valid.dtype.kind == "f":
        return valid.copy()
    return valid.astype(np.float64)
