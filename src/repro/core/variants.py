"""Ablation variants of EHNA (Table VII).

- **EHNA-NA** — no attention: node and walk inputs enter the LSTMs
  unweighted; everything else unchanged.
- **EHNA-RW** — traditional random walks: uniform static walks replace the
  temporal walk, and (per the paper) the attention mechanism is dropped too,
  since Eq. 3/4 need walk timestamps.
- **EHNA-SL** — single-layer LSTM, no two-level aggregation: each target's
  walks are merged into one sequence consumed by a 1-layer LSTM.
"""

from __future__ import annotations

from repro.core.model import EHNA


def ehna_full(seed=None, **overrides) -> EHNA:
    """The complete model (reference configuration)."""
    model = EHNA(seed=seed, **overrides)
    model.name = "EHNA"
    return model


def ehna_na(seed=None, **overrides) -> EHNA:
    """EHNA without the attention mechanisms."""
    model = EHNA(seed=seed, **{"use_attention": False, **overrides})
    model.name = "EHNA-NA"
    return model


def ehna_rw(seed=None, **overrides) -> EHNA:
    """EHNA with traditional (static, uniform) random walks, no attention."""
    params = {"temporal_walks": False, "use_attention": False, **overrides}
    model = EHNA(seed=seed, **params)
    model.name = "EHNA-RW"
    return model


def ehna_sl(seed=None, **overrides) -> EHNA:
    """EHNA with a single-layer LSTM and single-level aggregation."""
    params = {"lstm_layers": 1, "two_level": False, **overrides}
    model = EHNA(seed=seed, **params)
    model.name = "EHNA-SL"
    return model


#: Table VII rows in paper order.
ABLATION_VARIANTS = {
    "EHNA": ehna_full,
    "EHNA-NA": ehna_na,
    "EHNA-RW": ehna_rw,
    "EHNA-SL": ehna_sl,
}
