"""EHNA hyper-parameters.

Defaults marked *paper* follow Section V.C; the remaining defaults are the
laptop-scale settings used by the test-suite and benchmark harnesses (the
graphs here are ~10³ edges rather than the paper's 10⁶, so smaller embedding
and walk budgets converge in seconds without changing the method).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.dtypes import get_precision
from repro.utils.validation import check_non_negative, check_positive


@dataclass
class EHNAConfig:
    """All knobs of the EHNA model and its trainer."""

    dim: int = 32  # paper: 128
    lstm_layers: int = 2  # paper: 2
    num_walks: int = 4  # paper: k = 10
    walk_length: int = 6  # paper: l = 10
    p: float = 0.5  # paper: grid over {0.25..4}, optimum log2 p = -1
    q: float = 2.0  # paper: grid over {0.25..4}, optimum log2 q = 1
    decay: float = 1.0  # Eq. 1 time-decay rate on the [0,1] time scale
    margin: float = 5.0  # paper: m = 5 (Fig. 5a)
    num_negatives: int = 3  # paper: Q = 5
    bidirectional: bool = True  # Eq. 7 (False gives Eq. 6)
    batch_size: int = 32  # paper: 512 (with 10^6-edge graphs)
    epochs: int = 3
    lr: float = 2e-2  # embedding-table learning rate
    # Learning rate of the aggregation network (LSTMs, BN, readout W).  The
    # paper grid-searches tiny rates (2e-5..2e-7, Section V.C) — the network
    # must move much slower than the embeddings or Adam's per-parameter
    # scaling erodes the identity readout before any pairwise signal forms.
    # None = lr / 20.
    network_lr: float | None = None
    # Element-wise gradient clip bound for both optimizers; 0 disables
    # clipping (mapped to the optimizers' clip=None — never to a zero bound,
    # which would silently freeze training).
    grad_clip: float = 5.0
    # Ablation switches (Table VII variants flip these).
    use_attention: bool = True
    temporal_walks: bool = True
    two_level: bool = True
    # Feed walks to the LSTM oldest-event-first ("sequence of chronological
    # events", Section IV.B).
    chronological: bool = True
    # Fallback neighborhood for negatives / isolated nodes (Section IV.D):
    # uniform walks this many hops deep, GraphSAGE style.
    fallback_hops: int = 2
    # Clamp for 1/Σt factors in Eq. 3/4 on the [0,1] time scale.
    time_eps: float = 1e-2
    # Noise-distribution exponent P_n(v) ∝ d^power (0 = uniform; ablation).
    negative_power: float = 0.75
    # LRU walk-cache capacity (in walk sets) of the batched walk engine; 0
    # disables caching and resamples fresh walks for every target, the
    # paper's behavior.  With a positive size, repeated fit() epochs (which
    # replay the same (node, t) targets) and the uniform fallback sampler
    # reuse cached neighborhoods instead of resampling.
    walk_cache_size: int = 0
    # Resolution of the cache key's time component: 0 keys on exact anchor
    # timestamps (reuse never mixes neighborhoods across anchors), k > 0
    # quantizes anchors into k buckets on the [0, 1] scale for more hits at
    # the cost of temporal fidelity.
    walk_time_buckets: int = 0
    # Loss geometry: "euclidean" (the paper's metric-space argument) or
    # "dot" (the word2vec-style similarity it argues against; ablation).
    objective: str = "euclidean"
    # Fused aggregation kernels: array-native WalkBatch construction in the
    # walk engine plus the single-node BPTT LSTM.  Numerically equivalent to
    # the reference path (Walk objects + batch_walks + stepwise StackedLSTM),
    # which False selects for ablations and the training-math smoke gate.
    fused_kernels: bool = True
    # One grouped aggregation per training batch (positives + every negative
    # group in a single walk-engine call / padding / LSTM launch / backward).
    # False restores the pre-fusion three-call step — the benchmark baseline.
    # Unlike fused_kernels this switch changes the loss trajectory slightly:
    # batch-norm statistics are computed per aggregator call, and negatives
    # are drawn from the shared RNG stream before (not after) the positive
    # walks, so the two paths sample different negatives/walks.
    one_pass: bool = True
    # Collapse repeated (node, anchor) pairs inside a grouped aggregation to
    # one walk set + one aggregation, scattered back to every occurrence.
    # Saves work when negatives collide or both endpoints repeat in a batch,
    # at the cost of those occurrences sharing one neighborhood sample
    # (slightly lower gradient variance reduction); off by default.
    dedup_aggregations: bool = False
    # Cap on a hub's per-hop candidate set in the temporal walk engine; 0
    # (default) keeps the exact behavior.  With cap > 0, each hop gathers
    # only a node's `candidate_cap` most recent historical events — O(cap)
    # per hop instead of O(degree) — truncating only the smallest Eq. 1
    # decay weights (see BatchedWalkEngine's sampling note).
    candidate_cap: int = 0
    # Data parallelism (repro.parallel).  num_workers=1 (default) is the
    # single-process legacy path, bitwise-unchanged.  num_workers >= 2 fans
    # training out over that many spawn workers attached to a shared-memory
    # graph; num_workers=0 runs the *same sharded math* inline without a
    # pool — the bitwise comparator for sync mode (sync trajectories are
    # worker-count-invariant: 0, 2, 4, ... all agree bitwise at a fixed
    # seed, but differ from the legacy path, whose batch-norm statistics
    # and RNG stream are whole-batch rather than per-shard).
    num_workers: int = 1
    # Gradient protocol of the parallel trainer: "sync" (deterministic
    # shard-averaged gradients, the EHNA default) or "hogwild" (lock-free
    # shared-array updates — only meaningful for the skip-gram baselines,
    # which route through repro.parallel.hogwild; EHNA rejects it).
    parallel: str = "sync"
    # Number of gradient shards a sync-mode batch is split into.  This —
    # not the worker count — defines the reduction order and the per-shard
    # RNG substreams, so changing worker counts never changes the math;
    # shards are dealt round-robin to however many workers exist.
    parallel_shards: int = 8
    # Precision policy of the compute substrate (repro.nn.dtypes):
    # "float64" is the bitwise-stable reference mode; "float32" is the fast
    # mode — single-precision parameters/activations/walk batches validated
    # by loosened-tolerance gradchecks and loss/AUC agreement (see
    # docs/architecture.md, "The precision policy").  Anchor timestamps and
    # walk sampling stay float64 in both modes: time is data, not compute.
    precision: str = "float64"

    def validate(self) -> "EHNAConfig":
        """Raise ``ValueError`` on inconsistent settings; return self."""
        check_positive("dim", self.dim)
        check_positive("lstm_layers", self.lstm_layers)
        check_positive("num_walks", self.num_walks)
        check_positive("walk_length", self.walk_length)
        check_positive("p", self.p)
        check_positive("q", self.q)
        check_non_negative("decay", self.decay)
        check_non_negative("margin", self.margin)
        check_positive("num_negatives", self.num_negatives)
        check_positive("batch_size", self.batch_size)
        check_positive("epochs", self.epochs)
        check_positive("lr", self.lr)
        if self.network_lr is not None:
            check_positive("network_lr", self.network_lr)
        check_non_negative("grad_clip", self.grad_clip)
        check_positive("fallback_hops", self.fallback_hops)
        check_positive("time_eps", self.time_eps)
        check_non_negative("negative_power", self.negative_power)
        check_non_negative("walk_cache_size", self.walk_cache_size)
        check_non_negative("walk_time_buckets", self.walk_time_buckets)
        if self.objective not in ("euclidean", "dot"):
            raise ValueError(
                f"objective must be 'euclidean' or 'dot', got {self.objective!r}"
            )
        check_non_negative("candidate_cap", self.candidate_cap)
        check_non_negative("num_workers", self.num_workers)
        check_positive("parallel_shards", self.parallel_shards)
        if self.parallel not in ("sync", "hogwild"):
            raise ValueError(
                f"parallel must be 'sync' or 'hogwild', got {self.parallel!r}"
            )
        # Raises UnknownPrecisionError listing the valid policy names.
        get_precision(self.precision)
        if not self.two_level and self.lstm_layers > 1:
            # EHNA-SL pairs a single-layer LSTM with single-level aggregation.
            raise ValueError("two_level=False requires lstm_layers=1 (EHNA-SL)")
        return self
