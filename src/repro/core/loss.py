"""Margin-based objective with negative sampling (Eq. 5-7).

The loss pulls the aggregated embeddings of linked nodes together and pushes
sampled non-links at least ``margin`` further away, in *squared Euclidean*
distance — the paper argues the triangle inequality of a metric space
preserves first- and second-order proximity (Section IV.D).

Note that the aggregated embeddings are L2-normalized, so ``||z_a - z_b||²``
is at most 4; with the paper's ``m = 5`` the hinge never saturates and the
objective behaves like a pure distance-difference loss — this matches
Fig. 5a, where performance stops improving once ``m`` reaches 5.

The loss is precision-transparent: ``margin`` and the ``1/B`` normalizer are
Python scalars (weak under NumPy promotion), so the computation runs — and
the gradients return — entirely in the policy dtype of the incoming
aggregated embeddings.  The normalized distances are O(1), far from
``float32``'s limits, which is why the fast mode needs no loss-scaling.
"""

from __future__ import annotations

from repro.nn.tensor import Tensor
from repro.utils.validation import check_non_negative


def _pair_distance(a: Tensor, b: Tensor, metric: str) -> Tensor:
    """Rowwise dissimilarity: squared Euclidean or negated dot product."""
    if metric == "euclidean":
        diff = a - b
        return (diff * diff).sum(axis=1)
    if metric == "dot":
        return -(a * b).sum(axis=1)
    raise ValueError(f"metric must be 'euclidean' or 'dot', got {metric!r}")


def _neg_distance(z: Tensor, neg: Tensor, metric: str) -> Tensor:
    """Dissimilarity between ``z`` (B, d) and each of ``neg`` (B, Q, d)."""
    b, d = z.shape
    z3 = z.reshape((b, 1, d))
    if metric == "euclidean":
        diff = z3 - neg
        return (diff * diff).sum(axis=2)
    if metric == "dot":
        return -(z3 * neg).sum(axis=2)
    raise ValueError(f"metric must be 'euclidean' or 'dot', got {metric!r}")


def margin_hinge_loss(
    z_x: Tensor,
    z_y: Tensor,
    neg_x: Tensor,
    margin: float,
    neg_y: Tensor | None = None,
    metric: str = "euclidean",
) -> Tensor:
    """Eq. 6 (``neg_y=None``) or the bidirectional Eq. 7.

    Parameters
    ----------
    z_x, z_y:
        ``(B, d)`` aggregated embeddings of the edge endpoints.
    neg_x:
        ``(B, Q, d)`` aggregated embeddings of negatives contrasted with
        ``z_x`` (first expectation of Eq. 6/7).
    neg_y:
        Optional ``(B, Q, d)`` negatives contrasted with ``z_y`` (the second
        expectation of Eq. 7).
    metric:
        ``"euclidean"`` for the paper's squared-distance objective, ``"dot"``
        for the distance-independent alternative it argues against
        (Section IV.D; kept for the ablation bench).

    Returns the scalar mean loss per edge.
    """
    check_non_negative("margin", margin)
    b, d = z_x.shape
    if z_y.shape != (b, d):
        raise ValueError("z_x and z_y must have the same shape")
    if neg_x.ndim != 3 or neg_x.shape[0] != b or neg_x.shape[2] != d:
        raise ValueError(f"neg_x must be (B, Q, {d}), got {neg_x.shape}")

    pos_col = _pair_distance(z_x, z_y, metric).reshape((b, 1))
    loss = (pos_col + (margin - _neg_distance(z_x, neg_x, metric))).relu().sum()

    if neg_y is not None:
        if neg_y.shape[0] != b or neg_y.shape[2] != d:
            raise ValueError(f"neg_y must be (B, Q, {d}), got {neg_y.shape}")
        loss = loss + (
            pos_col + (margin - _neg_distance(z_y, neg_y, metric))
        ).relu().sum()

    return loss / float(b)
