"""Two-level aggregation over historical neighborhoods (Algorithm 1).

Given a batch of target nodes and ``k`` walks per target, the aggregator:

1. looks up node embeddings along every walk, weights them with node-level
   attention (Eq. 3, lines 2–3 of Algorithm 1);
2. runs the weighted sequences through a stacked LSTM, batch-norm and ReLU to
   get one representation ``h_r`` per walk (line 4);
3. weights the ``h_r`` with walk-level attention (Eq. 4, line 5) and runs a
   second stacked LSTM + batch-norm over each target's ``k`` walk
   representations to get the neighborhood summary ``H`` (line 6);
4. concatenates ``H`` with the target's own embedding and projects with a
   trainable matrix ``W`` (line 7), then L2-normalizes (line 8).

Walks of different lengths are padded and masked; masked LSTM steps carry
state through unchanged.  With ``two_level=False`` (the EHNA-SL ablation) the
caller merges each target's walks into one long sequence and step 3 is
skipped — ``h`` itself becomes the neighborhood summary.

:func:`batch_walks` is the *reference* ``Walk``-list padding path; the
training fast path receives :class:`~repro.walks.base.WalkBatch` arrays
directly from the walk engine (``temporal_walk_batch``), bitwise-equal for
the same walks.  Likewise the aggregator's LSTMs default to the fused
single-node BPTT kernel (``fused=True``) with the stepwise graph kept as the
gradcheck-verified reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.attention import node_attention, walk_attention, walk_factors
from repro.nn.layers import BatchNorm1d, Linear, Module, StackedLSTM
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import ensure_rng
from repro.walks.base import Walk, WalkBatch

__all__ = ["WalkBatch", "batch_walks", "TwoLevelAggregator"]


def _walk_rows(walk: Walk, scale, chronological: bool) -> tuple[list[int], np.ndarray]:
    """Node ids and normalized time-sums of one walk, optionally reversed.

    Temporal walks visit the most recent interaction first; with
    ``chronological=True`` the sequence is reversed so the LSTM consumes
    events oldest-first and its final state emphasizes the recent past.
    """
    nodes = list(walk.nodes)
    sums = walk.node_time_sums(scale)
    if chronological:
        nodes = nodes[::-1]
        sums = sums[::-1]
    return nodes, sums


def batch_walks(
    walk_sets: list[list[Walk]],
    scale,
    chronological: bool = True,
    merge: bool = False,
    real_dtype=np.float64,
) -> WalkBatch:
    """Pad a batch of per-target walk lists into :class:`WalkBatch` arrays.

    ``walk_sets[b]`` holds the walks of target ``b``; every target must have
    the same number of walks.  With ``merge=True`` each target's walks are
    concatenated into a single sequence (per-walk time-sums are computed
    *before* merging, so edges never leak across walk boundaries) — the
    single-level layout used by EHNA-SL.

    ``real_dtype`` is the precision policy's floating dtype for the emitted
    ``valid``/``time_sums`` arrays; time-sum accumulation itself always runs
    in ``float64`` (matching the engine fast path) and only the final arrays
    narrow.  This reference path keeps ``int64`` ids — it exists for
    correctness comparisons, not memory.
    """
    if not walk_sets:
        raise ValueError("walk_sets must not be empty")
    k = len(walk_sets[0])
    if k == 0 or any(len(ws) != k for ws in walk_sets):
        raise ValueError("every target needs the same positive number of walks")

    rows: list[tuple[list[int], np.ndarray]] = []
    if merge:
        for ws in walk_sets:
            nodes: list[int] = []
            sums: list[np.ndarray] = []
            for w in ws:
                n, s = _walk_rows(w, scale, chronological)
                nodes.extend(n)
                sums.append(s)
            rows.append((nodes, np.concatenate(sums)))
        k = 1
    else:
        for ws in walk_sets:
            for w in ws:
                rows.append(_walk_rows(w, scale, chronological))

    n_rows = len(rows)
    max_len = max(len(nodes) for nodes, _ in rows)
    ids = np.zeros((n_rows, max_len), dtype=np.int64)
    valid = np.zeros((n_rows, max_len), dtype=real_dtype)
    sums_arr = np.zeros((n_rows, max_len), dtype=real_dtype)
    for i, (nodes, sums) in enumerate(rows):
        ln = len(nodes)
        ids[i, :ln] = nodes
        valid[i, :ln] = 1.0
        sums_arr[i, :ln] = sums
    return WalkBatch(ids=ids, valid=valid, time_sums=sums_arr, k=k)


class TwoLevelAggregator(Module):
    """Algorithm 1 as a batched, differentiable module.

    ``dim`` doubles as the LSTM hidden size: Eq. 4 measures Euclidean
    distance between the target embedding ``e_x`` and walk representations
    ``h_r``, which forces the two spaces to share a dimension.

    ``fused=True`` (the default) runs both LSTMs through the single-node
    fused BPTT kernel (:func:`repro.nn.layers.fused_stacked_lstm`); the
    stepwise per-timestep graph remains available as the gradcheck-verified
    reference (``fused=False``).  The two paths are numerically equivalent —
    same parameters, same outputs, same gradients.
    """

    def __init__(
        self,
        dim: int,
        lstm_layers: int = 2,
        two_level: bool = True,
        rng=None,
        fused: bool = True,
        dtype=np.float64,
    ):
        super().__init__()
        rng = ensure_rng(rng)
        self.dim = dim
        self.two_level = two_level
        self.fused = bool(fused)
        self.dtype = np.dtype(dtype)
        self.node_lstm = StackedLSTM(dim, dim, lstm_layers, rng, dtype=dtype)
        self.node_bn = BatchNorm1d(dim, dtype=dtype)
        if two_level:
            self.walk_lstm = StackedLSTM(dim, dim, lstm_layers, rng, dtype=dtype)
            self.walk_bn = BatchNorm1d(dim, dtype=dtype)
        self.readout = Linear(2 * dim, dim, bias=False, rng=rng, dtype=dtype)
        # Identity-preserving initialization of W = [W_H | W_e] (line 7):
        # start with W_e = I and W_H small, so z ≈ e_x + ε·H at step 0.  The
        # margin loss then shapes the embedding table from the first batch,
        # while the LSTM pathway's contribution is learned on top — without
        # this, early training must push gradients through two stacked LSTMs
        # before any pairwise signal reaches the embeddings.
        self.readout.weight.data[:dim] *= 0.1
        self.readout.weight.data[dim:] = np.eye(dim)

    def __call__(
        self,
        embedding,
        targets: np.ndarray,
        batch: WalkBatch,
        use_attention: bool = True,
        time_eps: float = 1e-2,
    ) -> Tensor:
        """Aggregate; returns L2-normalized ``z`` of shape ``(B, dim)``."""
        targets = np.asarray(targets, dtype=np.int64)
        n_walks, max_len = batch.ids.shape
        k = batch.k
        n_targets = targets.size
        if n_walks != n_targets * k:
            raise ValueError(
                f"batch holds {n_walks} walks but {n_targets} targets x k={k} expected"
            )

        walk_embs = embedding(batch.ids)  # (W, T, dim)
        targets_rep = np.repeat(targets, k)
        target_embs = embedding(targets_rep)  # (W, dim)

        # -- node level (lines 2-4) -------------------------------------
        if use_attention:
            diff = walk_embs - target_embs.reshape((n_walks, 1, self.dim))
            dist = (diff * diff).sum(axis=2)  # (W, T)
            alpha = node_attention(dist, batch.time_sums, batch.valid, time_eps)
            weighted = walk_embs * alpha.reshape((n_walks, max_len, 1))
        else:
            weighted = walk_embs * Tensor(batch.valid.reshape((n_walks, max_len, 1)))

        if self.fused:
            h = self.node_lstm.fused(weighted, mask=batch.valid)
        else:
            steps = [weighted[:, t, :] for t in range(max_len)]
            _, h = self.node_lstm(steps, mask=batch.valid.T)
        h = self.node_bn(h).relu()  # (W, dim) — the h_r of line 4

        # -- walk level (lines 5-6) -------------------------------------
        if self.two_level:
            if use_attention:
                diff_w = h - target_embs
                dist_w = (diff_w * diff_w).sum(axis=1).reshape((n_targets, k))
                factors = walk_factors(batch.time_sums, batch.valid, time_eps)
                beta = walk_attention(dist_w, factors.reshape(n_targets, k))
                h_w = h.reshape((n_targets, k, self.dim)) * beta.reshape(
                    (n_targets, k, 1)
                )
            else:
                h_w = h.reshape((n_targets, k, self.dim))
            if self.fused:
                summary = self.walk_lstm.fused(h_w)
            else:
                walk_steps = [h_w[:, i, :] for i in range(k)]
                _, summary = self.walk_lstm(walk_steps)
            summary = self.walk_bn(summary)  # the H of line 6
        else:
            if k != 1:
                raise ValueError("single-level aggregation expects merged walks (k=1)")
            summary = h

        # -- readout (lines 7-8) -----------------------------------------
        own = embedding(targets)  # (B, dim)
        z = self.readout(concat([summary, own], axis=1))
        norm = ((z * z).sum(axis=1, keepdims=True) + 1e-12) ** 0.5
        return z / norm
