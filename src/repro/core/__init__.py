"""EHNA core: attention, aggregation, loss, negative sampling, model."""

from repro.core.aggregation import TwoLevelAggregator, WalkBatch, batch_walks
from repro.core.attention import (
    masked_softmax,
    node_attention,
    uniform_attention,
    walk_attention,
    walk_factors,
)
from repro.core.config import EHNAConfig
from repro.core.loss import margin_hinge_loss
from repro.core.model import EHNA
from repro.core.negative_sampling import NegativeSampler
from repro.core.params import FlatAdam, FlatParams, ParamGroup, ParamSpec
from repro.core.trainer import (
    EarlyStopping,
    LambdaCallback,
    Trainer,
    TrainerCallback,
    TrainState,
    VerboseCallback,
)
from repro.core.variants import (
    ABLATION_VARIANTS,
    ehna_full,
    ehna_na,
    ehna_rw,
    ehna_sl,
)

__all__ = [
    "EHNA",
    "EHNAConfig",
    "TwoLevelAggregator",
    "WalkBatch",
    "batch_walks",
    "node_attention",
    "walk_attention",
    "walk_factors",
    "masked_softmax",
    "uniform_attention",
    "margin_hinge_loss",
    "NegativeSampler",
    "FlatParams",
    "FlatAdam",
    "ParamGroup",
    "ParamSpec",
    "Trainer",
    "TrainState",
    "TrainerCallback",
    "VerboseCallback",
    "EarlyStopping",
    "LambdaCallback",
    "ABLATION_VARIANTS",
    "ehna_full",
    "ehna_na",
    "ehna_rw",
    "ehna_sl",
]
