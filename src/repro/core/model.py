"""The EHNA model: temporal walks + two-level aggregation + margin loss.

``EHNA.fit(graph)`` replays the network's edge formations in mini-batches.
For every target edge ``(x, y)`` it samples ``k`` temporal walks from each
endpoint (anchored at ``t(x,y)``), aggregates both historical neighborhoods
into ``z_x``/``z_y`` with the two-level attention architecture, draws
degree-biased negatives, and minimizes the (bidirectional) margin loss of
Eq. 7.

Negative nodes are aggregated through the *same* temporal pipeline, anchored
at the same ``t(x,y)`` (their relevance per Definition 2 is judged against a
hypothetical edge at that time); only nodes with no history before the anchor
fall back to the GraphSAGE-style 2-hop uniform sampling of Section IV.D.
Routing every node through one pipeline matters: if negatives came from a
visibly different view (e.g. always the uniform fallback), the loss could be
minimized by discriminating view types instead of node identities — a
shortcut that leaves the embeddings useless downstream.

After training, one additional aggregation anchored at each node's most
recent interaction produces the final embedding table (Section IV.D's
"``e_x = z_x``" step).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.base import EmbeddingMethod
from repro.core.aggregation import TwoLevelAggregator, batch_walks
from repro.core.config import EHNAConfig
from repro.core.loss import margin_hinge_loss
from repro.core.negative_sampling import NegativeSampler
from repro.graph.temporal_graph import TemporalGraph
from repro.nn.layers import Embedding
from repro.nn.optim import Adam
from repro.nn.tensor import concat
from repro.utils.rng import ensure_rng
from repro.walks.base import Walk
from repro.walks.engine import BatchedWalkEngine
from repro.walks.temporal import TemporalWalker


class EHNA(EmbeddingMethod):
    """Embedding via Historical Neighborhoods Aggregation.

    Parameters
    ----------
    config:
        Full hyper-parameter bundle; keyword overrides are applied on top,
        so ``EHNA(dim=64, epochs=10)`` works without building a config.
    seed:
        Seed or generator controlling weights, walks and negative samples.
    """

    name = "EHNA"

    def __init__(self, config: EHNAConfig | None = None, seed=None, **overrides):
        base = config if config is not None else EHNAConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self.config = base.validate()
        self._rng = ensure_rng(seed)
        self._final: np.ndarray | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, graph: TemporalGraph, verbose: bool = False) -> "EHNA":
        """Train on ``graph``; records per-epoch mean loss in ``loss_history``."""
        cfg = self.config
        rng = self._rng
        self.graph = graph
        self.embedding = Embedding(graph.num_nodes, cfg.dim, rng)
        self.aggregator = TwoLevelAggregator(
            cfg.dim, cfg.lstm_layers, cfg.two_level, rng
        )
        self.sampler = NegativeSampler(graph, power=cfg.negative_power)
        # One shared vectorized engine advances every walk family; the
        # temporal walker stays exposed as a thin per-node wrapper over it
        # (and doubles as the temporal_walks ablation switch).
        self.engine = BatchedWalkEngine(
            graph,
            p=cfg.p,
            q=cfg.q,
            decay=cfg.decay,
            cache_size=cfg.walk_cache_size,
            time_buckets=cfg.walk_time_buckets,
        )
        self.temporal_walker = (
            TemporalWalker(graph, p=cfg.p, q=cfg.q, decay=cfg.decay, engine=self.engine)
            if cfg.temporal_walks
            else None
        )
        network_lr = cfg.network_lr if cfg.network_lr is not None else cfg.lr / 20.0
        optimizers = [
            Adam(self.embedding.parameters(), lr=cfg.lr, clip=cfg.grad_clip),
            Adam(self.aggregator.parameters(), lr=network_lr, clip=cfg.grad_clip),
        ]

        edge_ids = np.arange(graph.num_edges)
        self.loss_history = []
        self.aggregator.train()
        for epoch in range(cfg.epochs):
            rng.shuffle(edge_ids)
            losses = []
            for lo in range(0, edge_ids.size, cfg.batch_size):
                batch = edge_ids[lo : lo + cfg.batch_size]
                losses.append(self._train_batch(batch, optimizers))
            mean_loss = float(np.mean(losses))
            self.loss_history.append(mean_loss)
            if verbose:
                print(f"[EHNA] epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f}")

        self._final = self._final_embeddings()
        return self

    def _aggregate(self, targets: np.ndarray, walk_sets, use_attention: bool):
        cfg = self.config
        batch = batch_walks(
            walk_sets,
            self.graph.scale_time,
            chronological=cfg.chronological,
            merge=not cfg.two_level,
        )
        return self.aggregator(
            self.embedding,
            targets,
            batch,
            use_attention=use_attention,
            time_eps=cfg.time_eps,
        )

    def _grouped_aggregate(self, nodes, times, include_context: bool = False):
        """Aggregate every node through the appropriate pipeline, in order.

        Nodes with historical interactions before their anchor time go
        through the temporal walk + attention path; the rest (and everything
        when ``temporal_walks=False``, the EHNA-RW ablation) go through
        uniform walks without attention.  ``times[i] is None`` forces the
        fallback.  Returns a ``(len(nodes), dim)`` tensor whose rows line up
        with ``nodes``.

        Walk generation is batched: one lockstep engine call samples the
        temporal walks of every eligible node in the batch, and a second one
        covers the uniform fallback/ablation walks.
        """
        cfg = self.config
        temporal_idx: list[int] = []
        temporal_sets: list[list[Walk]] = []
        static_idx: list[int] = []
        static_sets: list[list[Walk]] = []

        eligible = [
            i
            for i, t in enumerate(times)
            if self.temporal_walker is not None and t is not None
        ]
        eligible_set = set(eligible)
        need_static: list[int] = [i for i in range(len(nodes)) if i not in eligible_set]
        if eligible:
            sets = self.engine.temporal_walk_sets(
                np.asarray(nodes)[eligible],
                np.array([float(times[i]) for i in eligible]),
                cfg.num_walks,
                cfg.walk_length,
                self._rng,
                include_context=include_context,
            )
            for i, walks in zip(eligible, sets):
                if any(len(w) > 1 for w in walks):
                    temporal_idx.append(i)
                    temporal_sets.append(walks)
                else:
                    # No usable history at this anchor: uniform fallback.
                    need_static.append(i)
        if need_static:
            need_static.sort()
            # EHNA-RW samples full-length static walks for every node; the
            # fallback neighborhood stays shallow (Section IV.D).
            length = cfg.walk_length if self.temporal_walker is None else cfg.fallback_hops
            sets = self.engine.uniform_walk_sets(
                np.asarray(nodes)[need_static], cfg.num_walks, length, self._rng
            )
            static_idx = need_static
            static_sets = sets

        parts = []
        order: list[int] = []
        if temporal_idx:
            attention = cfg.use_attention and cfg.temporal_walks
            parts.append(
                self._aggregate(
                    np.asarray(nodes)[temporal_idx], temporal_sets, attention
                )
            )
            order.extend(temporal_idx)
        if static_idx:
            parts.append(
                self._aggregate(
                    np.asarray(nodes)[static_idx], static_sets, use_attention=False
                )
            )
            order.extend(static_idx)
        stacked = parts[0] if len(parts) == 1 else concat(parts, axis=0)
        # Restore the caller's row order (getitem backward scatter-adds).
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[np.asarray(order)] = np.arange(len(order))
        return stacked[inverse]

    def _train_batch(self, edge_ids: np.ndarray, optimizers: list[Adam]) -> float:
        cfg = self.config
        graph = self.graph
        xs = graph.src[edge_ids]
        ys = graph.dst[edge_ids]
        ts = graph.time[edge_ids]
        b = edge_ids.size

        # Aggregated embeddings of both endpoints, anchored at the edge time.
        targets = np.concatenate([xs, ys])
        anchor = np.concatenate([ts, ts])
        z = self._grouped_aggregate(targets, anchor)
        z_x, z_y = z[0:b], z[b : 2 * b]

        # Negatives per Eq. 6/7, anchored at the same edge times so they are
        # judged through the same historical-neighborhood pipeline.
        neg_x = self.sampler.sample(
            (b, cfg.num_negatives), self._rng, exclude_x=xs, exclude_y=ys
        )
        neg_t = np.repeat(ts, cfg.num_negatives)
        zn_x = self._grouped_aggregate(neg_x.ravel(), neg_t).reshape(
            (b, cfg.num_negatives, cfg.dim)
        )
        zn_y = None
        if cfg.bidirectional:
            neg_y = self.sampler.sample(
                (b, cfg.num_negatives), self._rng, exclude_x=xs, exclude_y=ys
            )
            zn_y = self._grouped_aggregate(neg_y.ravel(), neg_t).reshape(
                (b, cfg.num_negatives, cfg.dim)
            )

        loss = margin_hinge_loss(
            z_x, z_y, zn_x, cfg.margin, neg_y=zn_y, metric=cfg.objective
        )
        for opt in optimizers:
            opt.zero_grad()
        loss.backward()
        for opt in optimizers:
            opt.step()
        return loss.item()

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _final_embeddings(self) -> np.ndarray:
        """One aggregation per node anchored at its most recent edge."""
        cfg = self.config
        graph = self.graph
        self.aggregator.eval()
        out = np.zeros((graph.num_nodes, cfg.dim))
        nodes = np.arange(graph.num_nodes)
        for lo in range(0, nodes.size, cfg.batch_size):
            chunk = nodes[lo : lo + cfg.batch_size]
            anchors = [graph.last_event_time(int(v)) for v in chunk]
            z = self._grouped_aggregate(chunk, anchors, include_context=True)
            out[chunk] = z.data
        self.aggregator.train()
        return out

    def embeddings(self) -> np.ndarray:
        """The final aggregated embedding per node (Section IV.D)."""
        if self._final is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._final
