"""The EHNA model: temporal walks + two-level aggregation + margin loss.

``EHNA.fit(graph)`` replays the network's edge formations in mini-batches.
For every target edge ``(x, y)`` it samples ``k`` temporal walks from each
endpoint (anchored at ``t(x,y)``), aggregates both historical neighborhoods
into ``z_x``/``z_y`` with the two-level attention architecture, draws
degree-biased negatives, and minimizes the (bidirectional) margin loss of
Eq. 7.

Negative nodes are aggregated through the *same* temporal pipeline, anchored
at the same ``t(x,y)`` (their relevance per Definition 2 is judged against a
hypothetical edge at that time); only nodes with no history before the anchor
fall back to the GraphSAGE-style 2-hop uniform sampling of Section IV.D.
Routing every node through one pipeline matters: if negatives came from a
visibly different view (e.g. always the uniform fallback), the loss could be
minimized by discriminating view types instead of node identities — a
shortcut that leaves the embeddings useless downstream.

After training, one additional aggregation anchored at each node's most
recent interaction produces the final embedding table (Section IV.D's
"``e_x = z_x``" step).  That anchor choice is exactly what the v2 protocol
generalizes: ``encode(nodes, at=times)`` runs the same trained aggregator at
*arbitrary* anchors — embedding a node "as of" any moment of its history —
with ``embeddings()`` as the ``at=last_event_time`` special case.
``partial_fit`` appends arriving edges and trains incrementally on them, and
``save``/``load`` checkpoint the full trained state.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.base import EmbeddingMethod, resolve_anchors
from repro.core.aggregation import TwoLevelAggregator, batch_walks
from repro.core.config import EHNAConfig
from repro.core.loss import margin_hinge_loss
from repro.core.negative_sampling import NegativeSampler
from repro.core.trainer import Trainer, with_verbose
from repro.graph.temporal_graph import TemporalGraph
from repro.nn.dtypes import get_precision
from repro.nn.layers import BatchNorm1d, Embedding
from repro.nn.optim import Adam
from repro.nn.tensor import concat
from repro.utils.checkpoint import CheckpointError
from repro.utils.rng import ensure_rng
from repro.walks.base import Walk
from repro.walks.engine import BatchedWalkEngine
from repro.walks.temporal import TemporalWalker


class EHNA(EmbeddingMethod):
    """Embedding via Historical Neighborhoods Aggregation.

    Parameters
    ----------
    config:
        Full hyper-parameter bundle; keyword overrides are applied on top,
        so ``EHNA(dim=64, epochs=10)`` works without building a config.
    seed:
        Seed or generator controlling weights, walks and negative samples.
    callbacks:
        Default :class:`~repro.core.trainer.TrainerCallback` list applied to
        every ``fit``/``partial_fit`` (merged with per-call callbacks).
    """

    name = "EHNA"

    def __init__(
        self, config: EHNAConfig | None = None, seed=None, callbacks=(), **overrides
    ):
        base = config if config is not None else EHNAConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self.config = base.validate()
        # The precision policy threads one dtype through the embedding table,
        # both LSTM stacks, the walk batches and the train step; anchor
        # timestamps stay float64 (time is data, not compute).
        self._precision = get_precision(self.config.precision)
        self._rng = ensure_rng(seed)
        self.callbacks = tuple(callbacks)
        self.graph: TemporalGraph | None = None
        self._final: np.ndarray | None = None
        self._infer_seed: int = 0
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # construction of graph-bound runtime state
    # ------------------------------------------------------------------
    def _build_sampling(self, graph: TemporalGraph) -> None:
        """(Re)bind the negative sampler and walk engine to ``graph``."""
        cfg = self.config
        self.sampler = NegativeSampler(graph, power=cfg.negative_power)
        # One shared vectorized engine advances every walk family; the
        # temporal walker stays exposed as a thin per-node wrapper over it
        # (and doubles as the temporal_walks ablation switch).
        self.engine = BatchedWalkEngine(
            graph,
            p=cfg.p,
            q=cfg.q,
            decay=cfg.decay,
            cache_size=cfg.walk_cache_size,
            time_buckets=cfg.walk_time_buckets,
            real_dtype=self._precision.real,
            candidate_cap=cfg.candidate_cap,
        )
        self.temporal_walker = (
            TemporalWalker(graph, p=cfg.p, q=cfg.q, decay=cfg.decay, engine=self.engine)
            if cfg.temporal_walks
            else None
        )

    def _build_runtime(self, graph: TemporalGraph, rng=None) -> None:
        """Fresh parameters and graph bindings (``fit`` and ``load`` entry)."""
        cfg = self.config
        rng = self._rng if rng is None else rng
        self.graph = graph
        self.embedding = Embedding(
            graph.num_nodes, cfg.dim, rng, dtype=self._precision.real
        )
        self.aggregator = TwoLevelAggregator(
            cfg.dim,
            cfg.lstm_layers,
            cfg.two_level,
            rng,
            fused=cfg.fused_kernels,
            dtype=self._precision.real,
        )
        self._build_sampling(graph)

    def _make_optimizers(self) -> list[Adam]:
        cfg = self.config
        network_lr = cfg.network_lr if cfg.network_lr is not None else cfg.lr / 20.0
        clip = cfg.grad_clip if cfg.grad_clip > 0 else None  # 0 = no clipping
        return [
            Adam(self.embedding.parameters(), lr=cfg.lr, clip=clip),
            Adam(self.aggregator.parameters(), lr=network_lr, clip=clip),
        ]

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, graph: TemporalGraph, verbose: bool = False, callbacks=()) -> "EHNA":
        """Train on ``graph``; records per-epoch mean loss in ``loss_history``.

        ``verbose`` routes epoch reporting through the shared trainer's
        :class:`~repro.core.trainer.VerboseCallback`; ``callbacks`` may add
        early stopping, eval probes, or any other epoch-end hook.
        """
        cfg = self.config
        if cfg.num_workers != 1:
            # Data-parallel training (repro.parallel): sharded sync
            # gradients over a shared-memory graph.  num_workers=1 stays on
            # the legacy single-process path below, bitwise-unchanged.
            from repro.parallel.trainer import fit_data_parallel

            return fit_data_parallel(self, graph, verbose=verbose, callbacks=callbacks)
        self._build_runtime(graph)
        optimizers = self._make_optimizers()

        self.aggregator.train()
        trainer = Trainer(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            rng=self._rng,
            callbacks=with_verbose([*self.callbacks, *callbacks], verbose),
            name=self.name,
        )
        self.loss_history = trainer.run(
            lambda batch: self._train_batch(batch, optimizers),
            num_items=graph.num_edges,
        )

        self._final = self._final_embeddings()
        self._infer_seed = int(self._rng.integers(2**63 - 1))
        return self

    def _aggregate(self, targets: np.ndarray, walk_sets, use_attention: bool):
        cfg = self.config
        batch = batch_walks(
            walk_sets,
            self.graph.scale_time,
            chronological=cfg.chronological,
            merge=not cfg.two_level,
            real_dtype=self._precision.real,
        )
        return self._aggregate_batch(targets, batch, use_attention)

    def _aggregate_batch(self, targets: np.ndarray, batch, use_attention: bool):
        """One aggregator launch over an already padded :class:`WalkBatch`."""
        return self.aggregator(
            self.embedding,
            targets,
            batch,
            use_attention=use_attention,
            time_eps=self.config.time_eps,
        )

    def _grouped_aggregate(self, nodes, times, include_context: bool = False, rng=None):
        """Aggregate every node through the appropriate pipeline, in order.

        Nodes with historical interactions before their anchor time go
        through the temporal walk + attention path; the rest (and everything
        when ``temporal_walks=False``, the EHNA-RW ablation) go through
        uniform walks without attention.  ``times`` is a float anchor array
        (``NaN`` forces the fallback) or an aligned sequence whose ``None``
        entries mean the same.  Returns a ``(len(nodes), dim)`` tensor whose
        rows line up with ``nodes``.

        With ``dedup_aggregations`` enabled, repeated ``(node, anchor)``
        pairs are aggregated once and scattered back to every occurrence
        (the getitem backward accumulates their gradients), trading
        per-occurrence neighborhood resampling for less work.

        ``rng`` defaults to the training stream; inference paths pass their
        own generator so serving queries never perturb training
        reproducibility — and those calls also bypass the walk cache, so
        answers never depend on (or change) training-cache warmth.
        """
        use_cache = rng is None  # explicit rng == inference: no cache
        rng = self._rng if rng is None else rng
        nodes = np.asarray(nodes, dtype=np.int64)
        anchors = _anchor_array(times, nodes.size)

        if self.config.dedup_aggregations and nodes.size > 1:
            # Key on (node, anchor bit pattern); canonicalize NaN so every
            # "no anchor" entry collapses to one key.
            canon = anchors.copy()
            canon[np.isnan(canon)] = np.nan
            keys = np.empty(nodes.size, dtype=[("v", np.int64), ("t", np.int64)])
            keys["v"] = nodes
            keys["t"] = canon.view(np.int64)
            uniq, inverse = np.unique(keys, return_inverse=True)
            if uniq.size < nodes.size:
                z = self._routed_aggregate(
                    uniq["v"].copy(),
                    uniq["t"].copy().view(np.float64),
                    include_context,
                    rng,
                    use_cache,
                )
                return z[inverse]
        return self._routed_aggregate(nodes, anchors, include_context, rng, use_cache)

    def _routed_aggregate(
        self,
        nodes: np.ndarray,
        anchors: np.ndarray,
        include_context: bool,
        rng,
        use_cache: bool,
    ):
        """Route ``nodes`` between the temporal and fallback pipelines.

        Walk generation is batched: one lockstep engine call samples the
        temporal walks of every eligible node, and a second covers the
        uniform fallback/ablation walks.  With ``fused_kernels`` the engine
        emits padded :class:`WalkBatch` arrays directly (no ``Walk`` objects,
        no Python re-padding) — except when the LRU walk cache is in play,
        which stores ``Walk`` sets and therefore keeps the reference path.
        Both paths consume the RNG stream identically and feed the aggregator
        bitwise-identical arrays.
        """
        cfg = self.config
        fast = cfg.fused_kernels and not (use_cache and self.engine.cache is not None)
        eligible = (
            ~np.isnan(anchors)
            if self.temporal_walker is not None
            else np.zeros(nodes.size, dtype=bool)
        )
        elig_idx = np.flatnonzero(eligible)
        static_mask = ~eligible

        temporal_idx = np.empty(0, dtype=np.int64)
        temporal_batch = None
        temporal_sets: list[list[Walk]] = []
        if elig_idx.size:
            if fast:
                batch = self.engine.temporal_walk_batch(
                    nodes[elig_idx],
                    anchors[elig_idx],
                    cfg.num_walks,
                    cfg.walk_length,
                    rng,
                    include_context=include_context,
                    chronological=cfg.chronological,
                )
                lengths = batch.row_lengths().reshape(elig_idx.size, cfg.num_walks)
                has_history = lengths.max(axis=1) > 1
                temporal_idx = elig_idx[has_history]
                if temporal_idx.size:
                    temporal_batch = batch.take_targets(np.flatnonzero(has_history))
                    if not cfg.two_level:
                        temporal_batch = temporal_batch.merged()
            else:
                sets = self.engine.temporal_walk_sets(
                    nodes[elig_idx],
                    anchors[elig_idx],
                    cfg.num_walks,
                    cfg.walk_length,
                    rng,
                    include_context=include_context,
                    use_cache=use_cache,
                )
                has_history = np.fromiter(
                    (any(len(w) > 1 for w in ws) for ws in sets),
                    dtype=bool,
                    count=len(sets),
                )
                temporal_idx = elig_idx[has_history]
                temporal_sets = [s for s, h in zip(sets, has_history) if h]
            # No usable history at the anchor: uniform fallback.
            static_mask[elig_idx[~has_history]] = True

        static_idx = np.flatnonzero(static_mask)  # ascending, like the seed
        static_batch = None
        static_sets: list[list[Walk]] = []
        if static_idx.size:
            # EHNA-RW samples full-length static walks for every node; the
            # fallback neighborhood stays shallow (Section IV.D).
            length = (
                cfg.walk_length if self.temporal_walker is None else cfg.fallback_hops
            )
            if fast:
                static_batch = self.engine.uniform_walk_batch(
                    nodes[static_idx],
                    cfg.num_walks,
                    length,
                    rng,
                    chronological=cfg.chronological,
                )
                if not cfg.two_level:
                    static_batch = static_batch.merged()
            else:
                static_sets = self.engine.uniform_walk_sets(
                    nodes[static_idx], cfg.num_walks, length, rng,
                    use_cache=use_cache,
                )

        parts = []
        if temporal_idx.size:
            attention = cfg.use_attention and cfg.temporal_walks
            parts.append(
                self._aggregate_batch(nodes[temporal_idx], temporal_batch, attention)
                if temporal_batch is not None
                else self._aggregate(nodes[temporal_idx], temporal_sets, attention)
            )
        if static_idx.size:
            parts.append(
                self._aggregate_batch(nodes[static_idx], static_batch, False)
                if static_batch is not None
                else self._aggregate(nodes[static_idx], static_sets, False)
            )
        order = np.concatenate([temporal_idx, static_idx])
        stacked = parts[0] if len(parts) == 1 else concat(parts, axis=0)
        # Restore the caller's row order (getitem backward scatter-adds).
        inverse = np.empty(order.size, dtype=np.int64)
        inverse[order] = np.arange(order.size)
        return stacked[inverse]

    def _train_batch(self, edge_ids: np.ndarray, optimizers: list[Adam]) -> float:
        """One optimizer step on a batch of target edges.

        ``one_pass=True`` (default) aggregates positives and every negative
        group in a single grouped call — one walk-engine launch, one padding,
        one LSTM kernel, one backward; ``one_pass=False`` keeps the
        pre-fusion three-call step as the measured baseline.
        """
        if self.config.one_pass:
            return self._train_batch_one_pass(edge_ids, optimizers)
        return self._train_batch_reference(edge_ids, optimizers)

    def _train_batch_one_pass(
        self, edge_ids: np.ndarray, optimizers: list[Adam]
    ) -> float:
        cfg = self.config
        graph = self.graph
        xs = graph.src[edge_ids]
        ys = graph.dst[edge_ids]
        ts = graph.time[edge_ids]
        b = edge_ids.size
        q = cfg.num_negatives

        # Negatives per Eq. 6/7 are drawn up front so positives + negatives
        # share one aggregation, all anchored at the edge times (negatives
        # are judged through the same historical-neighborhood pipeline).
        neg_x = self.sampler.sample((b, q), self._rng, exclude_x=xs, exclude_y=ys)
        neg_y = (
            self.sampler.sample((b, q), self._rng, exclude_x=xs, exclude_y=ys)
            if cfg.bidirectional
            else None
        )
        neg_t = np.repeat(ts, q)
        targets = [xs, ys, neg_x.ravel()]
        anchor = [ts, ts, neg_t]
        if neg_y is not None:
            targets.append(neg_y.ravel())
            anchor.append(neg_t)
        z = self._grouped_aggregate(np.concatenate(targets), np.concatenate(anchor))

        z_x, z_y = z[0:b], z[b : 2 * b]
        zn_x = z[2 * b : 2 * b + b * q].reshape((b, q, cfg.dim))
        zn_y = (
            z[2 * b + b * q : 2 * b + 2 * b * q].reshape((b, q, cfg.dim))
            if neg_y is not None
            else None
        )
        return self._optimize(z_x, z_y, zn_x, zn_y, optimizers)

    def _train_batch_reference(
        self, edge_ids: np.ndarray, optimizers: list[Adam]
    ) -> float:
        """The pre-fusion step: separate aggregations for positives and each
        negative group (kept as the benchmark baseline and for ablations;
        batch-norm statistics are per-call, so its loss trajectory differs
        slightly from the one-pass step)."""
        cfg = self.config
        graph = self.graph
        xs = graph.src[edge_ids]
        ys = graph.dst[edge_ids]
        ts = graph.time[edge_ids]
        b = edge_ids.size

        # Aggregated embeddings of both endpoints, anchored at the edge time.
        targets = np.concatenate([xs, ys])
        anchor = np.concatenate([ts, ts])
        z = self._grouped_aggregate(targets, anchor)
        z_x, z_y = z[0:b], z[b : 2 * b]

        neg_x = self.sampler.sample(
            (b, cfg.num_negatives), self._rng, exclude_x=xs, exclude_y=ys
        )
        neg_t = np.repeat(ts, cfg.num_negatives)
        zn_x = self._grouped_aggregate(neg_x.ravel(), neg_t).reshape(
            (b, cfg.num_negatives, cfg.dim)
        )
        zn_y = None
        if cfg.bidirectional:
            neg_y = self.sampler.sample(
                (b, cfg.num_negatives), self._rng, exclude_x=xs, exclude_y=ys
            )
            zn_y = self._grouped_aggregate(neg_y.ravel(), neg_t).reshape(
                (b, cfg.num_negatives, cfg.dim)
            )
        return self._optimize(z_x, z_y, zn_x, zn_y, optimizers)

    def _optimize(self, z_x, z_y, zn_x, zn_y, optimizers: list[Adam]) -> float:
        """Shared tail of both train-step variants: Eq. 5-7 loss, backward,
        one optimizer step.  Keeping it in one place means the ``one_pass``
        baseline can never silently diverge from the fused step's objective."""
        cfg = self.config
        loss = margin_hinge_loss(
            z_x, z_y, zn_x, cfg.margin, neg_y=zn_y, metric=cfg.objective
        )
        for opt in optimizers:
            opt.zero_grad()
        loss.backward()
        for opt in optimizers:
            opt.step()
        return loss.item()

    # ------------------------------------------------------------------
    # incremental training (protocol v2)
    # ------------------------------------------------------------------
    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        """Absorb streamed edges: grow the table, train on the fresh events.

        The aggregation network and embedding table continue from their
        trained state (new nodes get freshly initialized rows); optimizer
        moments restart, which for a small incremental batch acts as a mild
        trust region around the converged parameters.  After the incremental
        epochs, the final embedding table is re-aggregated so ``embeddings()``
        and the ``encode`` fast path reflect the extended history.
        """
        if self._final is None:
            raise RuntimeError("call fit() before partial_fit()")
        cfg = self.config
        extra = graph.num_nodes - self.embedding.num_embeddings
        if extra > 0:
            # Initialize only the new rows (Embedding's default bound); the
            # trained rows are kept, not reallocated-and-copied per batch.
            bound = 1.0 / np.sqrt(cfg.dim)
            new_rows = self._rng.uniform(-bound, bound, size=(extra, cfg.dim))
            self.embedding.weight.data = np.concatenate(
                [self.embedding.weight.data, new_rows.astype(self._precision.real)]
            )
            self.embedding.weight.grad = None
            self.embedding.num_embeddings = graph.num_nodes
        self._build_sampling(graph)
        optimizers = self._make_optimizers()

        self.aggregator.train()
        fresh = np.asarray(fresh_edge_ids, dtype=np.int64)
        trainer = Trainer(
            epochs=epochs if epochs is not None else 1,
            batch_size=cfg.batch_size,
            rng=self._rng,
            callbacks=list(self.callbacks),
            name=self.name,
        )
        self.loss_history.extend(
            trainer.run(
                lambda batch: self._train_batch(fresh[batch], optimizers),
                num_items=fresh.size,
            )
        )

        self._final = self._final_embeddings()
        self._infer_seed = int(self._rng.integers(2**63 - 1))

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _final_embeddings(self) -> np.ndarray:
        """One aggregation per node anchored at its most recent edge."""
        cfg = self.config
        graph = self.graph
        self.aggregator.eval()
        out = np.zeros((graph.num_nodes, cfg.dim), dtype=self._precision.real)
        nodes = np.arange(graph.num_nodes)
        all_anchors = graph.last_event_times(nodes)  # NaN marks isolated
        for lo in range(0, nodes.size, cfg.batch_size):
            chunk = nodes[lo : lo + cfg.batch_size]
            z = self._grouped_aggregate(
                chunk, all_anchors[lo : lo + cfg.batch_size], include_context=True
            )
            out[chunk] = z.data
        self.aggregator.train()
        return out

    def embeddings(self) -> np.ndarray:
        """The final aggregated embedding per node (Section IV.D)."""
        if self._final is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._final

    def encode(self, nodes, at=None) -> np.ndarray:
        """Embed ``nodes`` as of anchor time(s) ``at`` — batched, on demand.

        Runs the trained aggregator over each node's historical neighborhood
        *up to* its anchor.  ``at=None`` (or an anchor equal to a node's last
        event time) is the ``embeddings()`` special case and returns the
        precomputed final-table row exactly; other anchors aggregate live,
        in ``batch_size`` chunks, with walks drawn from a generator seeded
        once at the end of training — so ``encode`` is deterministic for a
        given query batch and never consumes the training RNG stream.
        """
        if self._final is None:
            raise RuntimeError("call fit() before encode()")
        cfg = self.config
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        anchors = _anchor_array(resolve_anchors(self.graph, nodes, at), nodes.size)
        # at=None resolved to each node's last event time — by definition
        # the table anchor, so reuse it instead of re-querying per node.
        table_anchor = (
            anchors if at is None else self.graph.last_event_times(nodes)
        )

        out = np.empty((nodes.size, cfg.dim), dtype=self._precision.real)
        # NaN == NaN (both "no anchor") and exact float equality: the final
        # table serves the default anchor bitwise; the rest aggregate live.
        fast = (anchors == table_anchor) | (
            np.isnan(anchors) & np.isnan(table_anchor)
        )
        fast_idx = np.flatnonzero(fast)
        live = np.flatnonzero(~fast)
        if fast_idx.size:
            out[fast_idx] = self._final[nodes[fast_idx]]
        if live.size:
            rng = np.random.default_rng(self._infer_seed)
            self.aggregator.eval()
            for lo in range(0, live.size, cfg.batch_size):
                chunk = live[lo : lo + cfg.batch_size]
                z = self._grouped_aggregate(
                    nodes[chunk],
                    anchors[chunk],
                    include_context=True,
                    rng=rng,
                )
                out[chunk] = z.data
            self.aggregator.train()
        return out

    # ------------------------------------------------------------------
    # checkpointing (protocol v2)
    # ------------------------------------------------------------------
    def _config_dict(self) -> dict:
        return dataclasses.asdict(self.config)

    def _precision_name(self) -> str:
        return self._precision.name

    @classmethod
    def _from_config(cls, config: dict) -> "EHNA":
        return cls(config=EHNAConfig(**config))

    def _named_parameters(self) -> list:
        """``(name, tensor)`` pairs in the flat-vector layout order.

        The embedding table first, then the aggregator parameters in their
        deterministic ``parameters()`` order — the contract
        :class:`~repro.core.params.FlatParams` and the data-parallel
        trainer's gradient protocol both build on.
        """
        named = [("embedding", self.embedding.weight)]
        named.extend(
            (f"agg/{i}", p) for i, p in enumerate(self.aggregator.parameters())
        )
        return named

    def _batch_norms(self) -> list[BatchNorm1d]:
        """The aggregator's BN layers, in deterministic module order (their
        running statistics live outside ``parameters()``)."""
        return [m for m in self.aggregator.modules() if isinstance(m, BatchNorm1d)]

    def _state_dict(self) -> tuple[dict, dict]:
        if self._final is None:
            raise RuntimeError("call fit() before save()")
        arrays = {
            "embedding": self.embedding.weight.data,
            "final": self._final,
        }
        for i, p in enumerate(self.aggregator.parameters()):
            arrays[f"agg/{i}"] = p.data
        for j, bn in enumerate(self._batch_norms()):
            arrays[f"bn/{j}/mean"] = bn.running_mean
            arrays[f"bn/{j}/var"] = bn.running_var
        meta = {
            "loss_history": self.loss_history,
            "infer_seed": self._infer_seed,
        }
        return arrays, meta

    def _load_state_dict(self, arrays: dict, meta: dict) -> None:
        if self.graph is None:
            raise CheckpointError("EHNA checkpoint is missing its graph")
        # Parameters are overwritten below, so initialize from a throwaway
        # generator — the restored RNG stream continues exactly where the
        # saved model's left off.
        self._build_runtime(self.graph, rng=np.random.default_rng(0))
        _assign(self.embedding.weight.data, arrays, "embedding")
        for i, p in enumerate(self.aggregator.parameters()):
            _assign(p.data, arrays, f"agg/{i}")
        for j, bn in enumerate(self._batch_norms()):
            _assign(bn.running_mean, arrays, f"bn/{j}/mean")
            _assign(bn.running_var, arrays, f"bn/{j}/var")
        # Casting here (not just _assign's in-place copy) covers the final
        # table, which is stored directly rather than copied into a buffer.
        self._final = np.asarray(arrays["final"], dtype=self._precision.real)
        self.loss_history = [float(x) for x in meta.get("loss_history", [])]
        self._infer_seed = int(meta["infer_seed"])


def _anchor_array(times, n: int) -> np.ndarray:
    """Normalize anchor times into a float array; ``None`` becomes ``NaN``.

    Accepts the vectorized form (a float ndarray, e.g. from
    :meth:`TemporalGraph.last_event_times`) as-is and converts legacy
    ``None``-bearing sequences without a per-element branch in callers.
    """
    if isinstance(times, np.ndarray) and times.dtype.kind == "f":
        arr = np.asarray(times, dtype=np.float64)
    else:
        arr = np.array(
            [np.nan if t is None else float(t) for t in times], dtype=np.float64
        )
    if arr.shape != (n,):
        raise ValueError(f"expected {n} anchor times, got shape {arr.shape}")
    return arr


def _assign(dst: np.ndarray, arrays: dict, key: str) -> None:
    """Copy ``arrays[key]`` into ``dst`` in place, validating presence/shape."""
    if key not in arrays:
        raise CheckpointError(f"checkpoint is missing array {key!r}")
    src = arrays[key]
    if src.shape != dst.shape:
        raise CheckpointError(
            f"checkpoint array {key!r} has shape {src.shape}, expected {dst.shape}"
        )
    dst[...] = src
