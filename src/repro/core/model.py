"""The EHNA model: temporal walks + two-level aggregation + margin loss.

``EHNA.fit(graph)`` replays the network's edge formations in mini-batches.
For every target edge ``(x, y)`` it samples ``k`` temporal walks from each
endpoint (anchored at ``t(x,y)``), aggregates both historical neighborhoods
into ``z_x``/``z_y`` with the two-level attention architecture, draws
degree-biased negatives, and minimizes the (bidirectional) margin loss of
Eq. 7.

Negative nodes are aggregated through the *same* temporal pipeline, anchored
at the same ``t(x,y)`` (their relevance per Definition 2 is judged against a
hypothetical edge at that time); only nodes with no history before the anchor
fall back to the GraphSAGE-style 2-hop uniform sampling of Section IV.D.
Routing every node through one pipeline matters: if negatives came from a
visibly different view (e.g. always the uniform fallback), the loss could be
minimized by discriminating view types instead of node identities — a
shortcut that leaves the embeddings useless downstream.

After training, one additional aggregation anchored at each node's most
recent interaction produces the final embedding table (Section IV.D's
"``e_x = z_x``" step).  That anchor choice is exactly what the v2 protocol
generalizes: ``encode(nodes, at=times)`` runs the same trained aggregator at
*arbitrary* anchors — embedding a node "as of" any moment of its history —
with ``embeddings()`` as the ``at=last_event_time`` special case.
``partial_fit`` appends arriving edges and trains incrementally on them, and
``save``/``load`` checkpoint the full trained state.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.base import EmbeddingMethod, resolve_anchors
from repro.core.aggregation import TwoLevelAggregator, batch_walks
from repro.core.config import EHNAConfig
from repro.core.loss import margin_hinge_loss
from repro.core.negative_sampling import NegativeSampler
from repro.core.trainer import Trainer, with_verbose
from repro.graph.temporal_graph import TemporalGraph
from repro.nn.layers import BatchNorm1d, Embedding
from repro.nn.optim import Adam
from repro.nn.tensor import concat
from repro.utils.checkpoint import CheckpointError
from repro.utils.rng import ensure_rng
from repro.walks.base import Walk
from repro.walks.engine import BatchedWalkEngine
from repro.walks.temporal import TemporalWalker


class EHNA(EmbeddingMethod):
    """Embedding via Historical Neighborhoods Aggregation.

    Parameters
    ----------
    config:
        Full hyper-parameter bundle; keyword overrides are applied on top,
        so ``EHNA(dim=64, epochs=10)`` works without building a config.
    seed:
        Seed or generator controlling weights, walks and negative samples.
    callbacks:
        Default :class:`~repro.core.trainer.TrainerCallback` list applied to
        every ``fit``/``partial_fit`` (merged with per-call callbacks).
    """

    name = "EHNA"

    def __init__(
        self, config: EHNAConfig | None = None, seed=None, callbacks=(), **overrides
    ):
        base = config if config is not None else EHNAConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self.config = base.validate()
        self._rng = ensure_rng(seed)
        self.callbacks = tuple(callbacks)
        self.graph: TemporalGraph | None = None
        self._final: np.ndarray | None = None
        self._infer_seed: int = 0
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # construction of graph-bound runtime state
    # ------------------------------------------------------------------
    def _build_sampling(self, graph: TemporalGraph) -> None:
        """(Re)bind the negative sampler and walk engine to ``graph``."""
        cfg = self.config
        self.sampler = NegativeSampler(graph, power=cfg.negative_power)
        # One shared vectorized engine advances every walk family; the
        # temporal walker stays exposed as a thin per-node wrapper over it
        # (and doubles as the temporal_walks ablation switch).
        self.engine = BatchedWalkEngine(
            graph,
            p=cfg.p,
            q=cfg.q,
            decay=cfg.decay,
            cache_size=cfg.walk_cache_size,
            time_buckets=cfg.walk_time_buckets,
        )
        self.temporal_walker = (
            TemporalWalker(graph, p=cfg.p, q=cfg.q, decay=cfg.decay, engine=self.engine)
            if cfg.temporal_walks
            else None
        )

    def _build_runtime(self, graph: TemporalGraph, rng=None) -> None:
        """Fresh parameters and graph bindings (``fit`` and ``load`` entry)."""
        cfg = self.config
        rng = self._rng if rng is None else rng
        self.graph = graph
        self.embedding = Embedding(graph.num_nodes, cfg.dim, rng)
        self.aggregator = TwoLevelAggregator(
            cfg.dim, cfg.lstm_layers, cfg.two_level, rng
        )
        self._build_sampling(graph)

    def _make_optimizers(self) -> list[Adam]:
        cfg = self.config
        network_lr = cfg.network_lr if cfg.network_lr is not None else cfg.lr / 20.0
        clip = cfg.grad_clip if cfg.grad_clip > 0 else None  # 0 = no clipping
        return [
            Adam(self.embedding.parameters(), lr=cfg.lr, clip=clip),
            Adam(self.aggregator.parameters(), lr=network_lr, clip=clip),
        ]

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, graph: TemporalGraph, verbose: bool = False, callbacks=()) -> "EHNA":
        """Train on ``graph``; records per-epoch mean loss in ``loss_history``.

        ``verbose`` routes epoch reporting through the shared trainer's
        :class:`~repro.core.trainer.VerboseCallback`; ``callbacks`` may add
        early stopping, eval probes, or any other epoch-end hook.
        """
        cfg = self.config
        self._build_runtime(graph)
        optimizers = self._make_optimizers()

        self.aggregator.train()
        trainer = Trainer(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            rng=self._rng,
            callbacks=with_verbose([*self.callbacks, *callbacks], verbose),
            name=self.name,
        )
        self.loss_history = trainer.run(
            lambda batch: self._train_batch(batch, optimizers),
            num_items=graph.num_edges,
        )

        self._final = self._final_embeddings()
        self._infer_seed = int(self._rng.integers(2**63 - 1))
        return self

    def _aggregate(self, targets: np.ndarray, walk_sets, use_attention: bool):
        cfg = self.config
        batch = batch_walks(
            walk_sets,
            self.graph.scale_time,
            chronological=cfg.chronological,
            merge=not cfg.two_level,
        )
        return self.aggregator(
            self.embedding,
            targets,
            batch,
            use_attention=use_attention,
            time_eps=cfg.time_eps,
        )

    def _grouped_aggregate(self, nodes, times, include_context: bool = False, rng=None):
        """Aggregate every node through the appropriate pipeline, in order.

        Nodes with historical interactions before their anchor time go
        through the temporal walk + attention path; the rest (and everything
        when ``temporal_walks=False``, the EHNA-RW ablation) go through
        uniform walks without attention.  ``times[i] is None`` forces the
        fallback.  Returns a ``(len(nodes), dim)`` tensor whose rows line up
        with ``nodes``.

        Walk generation is batched: one lockstep engine call samples the
        temporal walks of every eligible node in the batch, and a second one
        covers the uniform fallback/ablation walks.  ``rng`` defaults to the
        training stream; inference paths pass their own generator so serving
        queries never perturb training reproducibility — and those calls
        also bypass the walk cache, so answers never depend on (or change)
        training-cache warmth.
        """
        cfg = self.config
        use_cache = rng is None  # explicit rng == inference: no cache
        rng = self._rng if rng is None else rng
        temporal_idx: list[int] = []
        temporal_sets: list[list[Walk]] = []
        static_idx: list[int] = []
        static_sets: list[list[Walk]] = []

        eligible = [
            i
            for i, t in enumerate(times)
            if self.temporal_walker is not None and t is not None
        ]
        eligible_set = set(eligible)
        need_static: list[int] = [i for i in range(len(nodes)) if i not in eligible_set]
        if eligible:
            sets = self.engine.temporal_walk_sets(
                np.asarray(nodes)[eligible],
                np.array([float(times[i]) for i in eligible]),
                cfg.num_walks,
                cfg.walk_length,
                rng,
                include_context=include_context,
                use_cache=use_cache,
            )
            for i, walks in zip(eligible, sets):
                if any(len(w) > 1 for w in walks):
                    temporal_idx.append(i)
                    temporal_sets.append(walks)
                else:
                    # No usable history at this anchor: uniform fallback.
                    need_static.append(i)
        if need_static:
            need_static.sort()
            # EHNA-RW samples full-length static walks for every node; the
            # fallback neighborhood stays shallow (Section IV.D).
            length = cfg.walk_length if self.temporal_walker is None else cfg.fallback_hops
            sets = self.engine.uniform_walk_sets(
                np.asarray(nodes)[need_static], cfg.num_walks, length, rng,
                use_cache=use_cache,
            )
            static_idx = need_static
            static_sets = sets

        parts = []
        order: list[int] = []
        if temporal_idx:
            attention = cfg.use_attention and cfg.temporal_walks
            parts.append(
                self._aggregate(
                    np.asarray(nodes)[temporal_idx], temporal_sets, attention
                )
            )
            order.extend(temporal_idx)
        if static_idx:
            parts.append(
                self._aggregate(
                    np.asarray(nodes)[static_idx], static_sets, use_attention=False
                )
            )
            order.extend(static_idx)
        stacked = parts[0] if len(parts) == 1 else concat(parts, axis=0)
        # Restore the caller's row order (getitem backward scatter-adds).
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[np.asarray(order)] = np.arange(len(order))
        return stacked[inverse]

    def _train_batch(self, edge_ids: np.ndarray, optimizers: list[Adam]) -> float:
        cfg = self.config
        graph = self.graph
        xs = graph.src[edge_ids]
        ys = graph.dst[edge_ids]
        ts = graph.time[edge_ids]
        b = edge_ids.size

        # Aggregated embeddings of both endpoints, anchored at the edge time.
        targets = np.concatenate([xs, ys])
        anchor = np.concatenate([ts, ts])
        z = self._grouped_aggregate(targets, anchor)
        z_x, z_y = z[0:b], z[b : 2 * b]

        # Negatives per Eq. 6/7, anchored at the same edge times so they are
        # judged through the same historical-neighborhood pipeline.
        neg_x = self.sampler.sample(
            (b, cfg.num_negatives), self._rng, exclude_x=xs, exclude_y=ys
        )
        neg_t = np.repeat(ts, cfg.num_negatives)
        zn_x = self._grouped_aggregate(neg_x.ravel(), neg_t).reshape(
            (b, cfg.num_negatives, cfg.dim)
        )
        zn_y = None
        if cfg.bidirectional:
            neg_y = self.sampler.sample(
                (b, cfg.num_negatives), self._rng, exclude_x=xs, exclude_y=ys
            )
            zn_y = self._grouped_aggregate(neg_y.ravel(), neg_t).reshape(
                (b, cfg.num_negatives, cfg.dim)
            )

        loss = margin_hinge_loss(
            z_x, z_y, zn_x, cfg.margin, neg_y=zn_y, metric=cfg.objective
        )
        for opt in optimizers:
            opt.zero_grad()
        loss.backward()
        for opt in optimizers:
            opt.step()
        return loss.item()

    # ------------------------------------------------------------------
    # incremental training (protocol v2)
    # ------------------------------------------------------------------
    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        """Absorb streamed edges: grow the table, train on the fresh events.

        The aggregation network and embedding table continue from their
        trained state (new nodes get freshly initialized rows); optimizer
        moments restart, which for a small incremental batch acts as a mild
        trust region around the converged parameters.  After the incremental
        epochs, the final embedding table is re-aggregated so ``embeddings()``
        and the ``encode`` fast path reflect the extended history.
        """
        if self._final is None:
            raise RuntimeError("call fit() before partial_fit()")
        cfg = self.config
        extra = graph.num_nodes - self.embedding.num_embeddings
        if extra > 0:
            # Initialize only the new rows (Embedding's default bound); the
            # trained rows are kept, not reallocated-and-copied per batch.
            bound = 1.0 / np.sqrt(cfg.dim)
            new_rows = self._rng.uniform(-bound, bound, size=(extra, cfg.dim))
            self.embedding.weight.data = np.concatenate(
                [self.embedding.weight.data, new_rows]
            )
            self.embedding.weight.grad = None
            self.embedding.num_embeddings = graph.num_nodes
        self._build_sampling(graph)
        optimizers = self._make_optimizers()

        self.aggregator.train()
        fresh = np.asarray(fresh_edge_ids, dtype=np.int64)
        trainer = Trainer(
            epochs=epochs if epochs is not None else 1,
            batch_size=cfg.batch_size,
            rng=self._rng,
            callbacks=list(self.callbacks),
            name=self.name,
        )
        self.loss_history.extend(
            trainer.run(
                lambda batch: self._train_batch(fresh[batch], optimizers),
                num_items=fresh.size,
            )
        )

        self._final = self._final_embeddings()
        self._infer_seed = int(self._rng.integers(2**63 - 1))

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _final_embeddings(self) -> np.ndarray:
        """One aggregation per node anchored at its most recent edge."""
        cfg = self.config
        graph = self.graph
        self.aggregator.eval()
        out = np.zeros((graph.num_nodes, cfg.dim))
        nodes = np.arange(graph.num_nodes)
        for lo in range(0, nodes.size, cfg.batch_size):
            chunk = nodes[lo : lo + cfg.batch_size]
            anchors = [graph.last_event_time(int(v)) for v in chunk]
            z = self._grouped_aggregate(chunk, anchors, include_context=True)
            out[chunk] = z.data
        self.aggregator.train()
        return out

    def embeddings(self) -> np.ndarray:
        """The final aggregated embedding per node (Section IV.D)."""
        if self._final is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._final

    def encode(self, nodes, at=None) -> np.ndarray:
        """Embed ``nodes`` as of anchor time(s) ``at`` — batched, on demand.

        Runs the trained aggregator over each node's historical neighborhood
        *up to* its anchor.  ``at=None`` (or an anchor equal to a node's last
        event time) is the ``embeddings()`` special case and returns the
        precomputed final-table row exactly; other anchors aggregate live,
        in ``batch_size`` chunks, with walks drawn from a generator seeded
        once at the end of training — so ``encode`` is deterministic for a
        given query batch and never consumes the training RNG stream.
        """
        if self._final is None:
            raise RuntimeError("call fit() before encode()")
        cfg = self.config
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        anchors = resolve_anchors(self.graph, nodes, at)
        # at=None resolved to each node's last event time — by definition
        # the table anchor, so reuse it instead of re-querying per node.
        table_anchor = (
            anchors
            if at is None
            else [self.graph.last_event_time(int(v)) for v in nodes]
        )

        out = np.empty((nodes.size, cfg.dim))
        # None == None and exact float equality: the final table serves the
        # default anchor bitwise; everything else aggregates live.
        live = [i for i in range(nodes.size) if anchors[i] != table_anchor[i]]
        fast = [i for i in range(nodes.size) if anchors[i] == table_anchor[i]]
        if fast:
            idx = np.asarray(fast, dtype=np.int64)
            out[idx] = self._final[nodes[idx]]
        if live:
            rng = np.random.default_rng(self._infer_seed)
            self.aggregator.eval()
            for lo in range(0, len(live), cfg.batch_size):
                chunk = np.asarray(live[lo : lo + cfg.batch_size], dtype=np.int64)
                z = self._grouped_aggregate(
                    nodes[chunk],
                    [anchors[i] for i in chunk],
                    include_context=True,
                    rng=rng,
                )
                out[chunk] = z.data
            self.aggregator.train()
        return out

    # ------------------------------------------------------------------
    # checkpointing (protocol v2)
    # ------------------------------------------------------------------
    def _config_dict(self) -> dict:
        return dataclasses.asdict(self.config)

    @classmethod
    def _from_config(cls, config: dict) -> "EHNA":
        return cls(config=EHNAConfig(**config))

    def _batch_norms(self) -> list[BatchNorm1d]:
        """The aggregator's BN layers, in deterministic module order (their
        running statistics live outside ``parameters()``)."""
        return [m for m in self.aggregator.modules() if isinstance(m, BatchNorm1d)]

    def _state_dict(self) -> tuple[dict, dict]:
        if self._final is None:
            raise RuntimeError("call fit() before save()")
        arrays = {
            "embedding": self.embedding.weight.data,
            "final": self._final,
        }
        for i, p in enumerate(self.aggregator.parameters()):
            arrays[f"agg/{i}"] = p.data
        for j, bn in enumerate(self._batch_norms()):
            arrays[f"bn/{j}/mean"] = bn.running_mean
            arrays[f"bn/{j}/var"] = bn.running_var
        meta = {
            "loss_history": self.loss_history,
            "infer_seed": self._infer_seed,
        }
        return arrays, meta

    def _load_state_dict(self, arrays: dict, meta: dict) -> None:
        if self.graph is None:
            raise CheckpointError("EHNA checkpoint is missing its graph")
        # Parameters are overwritten below, so initialize from a throwaway
        # generator — the restored RNG stream continues exactly where the
        # saved model's left off.
        self._build_runtime(self.graph, rng=np.random.default_rng(0))
        _assign(self.embedding.weight.data, arrays, "embedding")
        for i, p in enumerate(self.aggregator.parameters()):
            _assign(p.data, arrays, f"agg/{i}")
        for j, bn in enumerate(self._batch_norms()):
            _assign(bn.running_mean, arrays, f"bn/{j}/mean")
            _assign(bn.running_var, arrays, f"bn/{j}/var")
        self._final = np.asarray(arrays["final"])
        self.loss_history = [float(x) for x in meta.get("loss_history", [])]
        self._infer_seed = int(meta["infer_seed"])


def _assign(dst: np.ndarray, arrays: dict, key: str) -> None:
    """Copy ``arrays[key]`` into ``dst`` in place, validating presence/shape."""
    if key not in arrays:
        raise CheckpointError(f"checkpoint is missing array {key!r}")
    src = arrays[key]
    if src.shape != dst.shape:
        raise CheckpointError(
            f"checkpoint array {key!r} has shape {src.shape}, expected {dst.shape}"
        )
    dst[...] = src
