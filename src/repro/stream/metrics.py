"""Serving metrics: latency percentiles and sustained throughput.

Plain accumulators over wall-clock samples — no background threads, no
windowing — because the streaming layer is single-threaded by design (see
``docs/architecture.md``).  :class:`LatencyTracker` keeps every sample so
``p50``/``p99`` are exact order statistics rather than sketch estimates; at
one float per query this costs less memory than the query's own walk batch.
"""

from __future__ import annotations

import numpy as np


class LatencyTracker:
    """Accumulates per-call latencies and reports exact percentiles.

    Record wall-clock *seconds* (what ``time.perf_counter`` differences
    give); the summary reports *milliseconds*, the natural unit for encode
    queries.  An empty tracker summarizes to zeros rather than NaN so
    ``stats()`` is always printable.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        """Add one latency sample, in seconds."""
        self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile latency in milliseconds (0 when empty)."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), p)) * 1e3

    def stats(self) -> dict[str, float]:
        """``{count, p50_ms, p99_ms, mean_ms, max_ms}`` of the samples."""
        if not self._samples:
            return {
                "count": 0,
                "p50_ms": 0.0,
                "p99_ms": 0.0,
                "mean_ms": 0.0,
                "max_ms": 0.0,
            }
        arr = np.asarray(self._samples)
        return {
            "count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50)) * 1e3,
            "p99_ms": float(np.percentile(arr, 99)) * 1e3,
            "mean_ms": float(arr.mean()) * 1e3,
            "max_ms": float(arr.max()) * 1e3,
        }


class ThroughputTracker:
    """Accumulates (events, seconds) pairs into a sustained events/sec rate."""

    def __init__(self) -> None:
        self.events = 0
        self.seconds = 0.0

    def add(self, events: int, seconds: float) -> None:
        """Account ``events`` processed in ``seconds`` of wall-clock time."""
        self.events += int(events)
        self.seconds += float(seconds)

    @property
    def events_per_sec(self) -> float:
        """Sustained rate over everything recorded (0 before any work)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.events / self.seconds
