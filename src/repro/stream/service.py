"""Online serving: interleave ingestion, incremental training and queries.

:class:`OnlineService` wraps a *fitted* embedding method and drives the full
streaming loop over the model's own graph:

- :meth:`ingest` appends a micro-batch of events through the graph's
  amortized :meth:`~repro.graph.temporal_graph.TemporalGraph.extend_in_place`
  path (O(batch) per call; the stable-merge re-sort is deferred to one
  compaction per ``compact_every`` events);
- :meth:`absorb` runs ``model.partial_fit()`` over every event ingested
  since the last absorb (the buffered-graph path — ``take_fresh`` claims
  each event exactly once), optionally automatic every ``train_every``
  ingested batches;
- :meth:`encode` answers time-anchored queries, timing each call into a
  :class:`~repro.stream.metrics.LatencyTracker`.

**Staleness model.** Queries are served by the model's walk engine, whose
sampling structures snapshot the graph at the last ``fit``/``absorb`` —
ingested-but-unabsorbed events are visible to graph readers but not to
queries.  :attr:`staleness` counts exactly those events, and ``absorb()``
resets it to zero.  By default the service **pins the graph's time scale**
at construction (``pin_time_scale=True``): the scaled-time encoding of
historical events then stays fixed as the stream head advances, so answers
for past anchors don't drift between absorbs merely because the timeline
grew.  Events that introduce *new* nodes only become queryable after the
next absorb (which grows the embedding table).

The service enforces stream order at the ingest boundary: a batch reaching
back before the newest ingested event is rejected, matching the loader's
monotonicity contract end to end.
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.base import EmbeddingMethod, parse_edge_batch
from repro.stream.loader import EventBatch
from repro.stream.metrics import LatencyTracker, ThroughputTracker
from repro.utils.validation import check_positive


class OnlineService:
    """Serve time-anchored embeddings while the event stream keeps arriving.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.base.EmbeddingMethod` (``model.graph`` set).
        The service grows this model's graph in place.
    compact_every:
        Buffered-event threshold for graph compaction (passed through to
        ``extend_in_place``); lower = fresher CSR, higher = less re-sort
        work per event.
    train_every:
        When set, ``absorb()`` runs automatically after every
        ``train_every`` ingested batches; ``None`` leaves absorption fully
        manual.
    epochs:
        Incremental epochs per absorb (``partial_fit``'s ``epochs``).
    pin_time_scale:
        Pin the graph's scaled-time mapping to its current span (see the
        staleness model above).  Default on; pass ``False`` to keep the
        legacy live rescaling.
    """

    def __init__(
        self,
        model: EmbeddingMethod,
        *,
        compact_every: int = 4096,
        train_every: int | None = None,
        epochs: int = 1,
        pin_time_scale: bool = True,
    ):
        if model.graph is None:
            raise RuntimeError(
                "OnlineService wraps a fitted model; call fit() first"
            )
        check_positive("compact_every", compact_every)
        check_positive("epochs", epochs)
        if train_every is not None:
            check_positive("train_every", train_every)
        self.model = model
        self.compact_every = int(compact_every)
        self.train_every = None if train_every is None else int(train_every)
        self.epochs = int(epochs)
        if pin_time_scale and model.graph.time_scale is None:
            model.graph.pin_time_scale()
        # The stream head: the graph's edge table is time-sorted, so the
        # newest event is the last row (empty graph = no constraint yet).
        times = model.graph.time
        self._head = float(times[-1]) if times.size else float("-inf")
        self._ingested = 0
        self._batches = 0
        self._absorbs = 0
        self._since_absorb = 0
        self._batches_since_absorb = 0
        self.ingest_throughput = ThroughputTracker()
        self.encode_latency = LatencyTracker()
        self.absorb_seconds = 0.0

    @property
    def graph(self):
        """The model's (growing) temporal graph."""
        return self.model.graph

    @property
    def staleness(self) -> int:
        """Events ingested since the last absorb — invisible to queries."""
        return self._since_absorb

    # ------------------------------------------------------------------
    # the streaming loop
    # ------------------------------------------------------------------
    def ingest(self, events) -> "OnlineService":
        """Append one micro-batch of events to the model's graph.

        ``events`` is an :class:`~repro.stream.loader.EventBatch` or any
        form :func:`repro.base.parse_edge_batch` accepts.  Empty batches are
        a no-op (but still count toward the ``train_every`` schedule, so a
        quiet time window can trigger a scheduled absorb).
        """
        if isinstance(events, EventBatch):
            events = events.columns()
        src, dst, time, weight = parse_edge_batch(events)
        time = np.asarray(time, dtype=np.float64)
        if time.size:
            t_min = float(time.min())
            if t_min < self._head:
                raise ValueError(
                    f"out-of-order ingest: batch contains time {t_min} "
                    f"earlier than the stream head {self._head}; the online "
                    "service only accepts events at or after the newest "
                    "ingested event"
                )
            t0 = _time.perf_counter()
            self.graph.extend_in_place(
                src, dst, time, weight, compact_every=self.compact_every
            )
            self.ingest_throughput.add(time.size, _time.perf_counter() - t0)
            self._head = float(time.max())
            self._ingested += time.size
            self._since_absorb += time.size
        self._batches += 1
        self._batches_since_absorb += 1
        if (
            self.train_every is not None
            and self._batches_since_absorb >= self.train_every
        ):
            self.absorb()
        return self

    def absorb(self, epochs: int | None = None) -> "OnlineService":
        """Train the model on every event ingested since the last absorb.

        Runs the buffered-graph ``partial_fit`` path: the graph compacts,
        ``take_fresh()`` hands over the unabsorbed events, and the model
        trains ``epochs`` incremental epochs on exactly those.  A zero-event
        absorb is a no-op (nothing trains, no state changes).
        """
        t0 = _time.perf_counter()
        self.model.partial_fit(epochs=self.epochs if epochs is None else epochs)
        self.absorb_seconds += _time.perf_counter() - t0
        if self._since_absorb:
            self._absorbs += 1
        self._since_absorb = 0
        self._batches_since_absorb = 0
        return self

    def encode(self, nodes, at=None) -> np.ndarray:
        """Answer a (timed) time-anchored embedding query.

        Delegates to ``model.encode(nodes, at=at)`` and records the
        wall-clock latency.  Answers reflect the model state as of the last
        absorb (see the staleness model in the module docstring).
        """
        t0 = _time.perf_counter()
        out = self.model.encode(nodes, at=at)
        self.encode_latency.record(_time.perf_counter() - t0)
        return out

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One flat snapshot of the service's counters and timings."""
        encode = self.encode_latency.stats()
        return {
            "events_ingested": self._ingested,
            "batches_ingested": self._batches,
            "ingest_events_per_sec": self.ingest_throughput.events_per_sec,
            "absorbs": self._absorbs,
            "absorb_seconds": self.absorb_seconds,
            "staleness_events": self.staleness,
            "pending_events": self.graph.pending_events,
            "compactions": self.graph.compactions,
            "encode_queries": encode["count"],
            "encode_p50_ms": encode["p50_ms"],
            "encode_p99_ms": encode["p99_ms"],
            "encode_mean_ms": encode["mean_ms"],
        }

    def __repr__(self) -> str:
        return (
            f"OnlineService({type(self.model).__name__}, "
            f"events={self._ingested}, absorbs={self._absorbs}, "
            f"staleness={self.staleness})"
        )
