"""Online serving: interleave ingestion, incremental training and queries.

:class:`OnlineService` wraps a *fitted* embedding method and drives the full
streaming loop over the model's own graph:

- :meth:`ingest` appends a micro-batch of events through the graph's
  amortized :meth:`~repro.graph.temporal_graph.TemporalGraph.extend_in_place`
  path (O(batch) per call; the stable-merge re-sort is deferred to one
  compaction per ``compact_every`` events);
- :meth:`absorb` runs ``model.partial_fit()`` over every event ingested
  since the last absorb (the buffered-graph path — ``take_fresh`` claims
  each event exactly once), optionally automatic every ``train_every``
  ingested batches;
- :meth:`encode` answers time-anchored queries, timing each call into a
  :class:`~repro.stream.metrics.LatencyTracker`.

**Staleness model.** Queries are served by the model's walk engine, whose
sampling structures snapshot the graph at the last ``fit``/``absorb`` —
ingested-but-unabsorbed events are visible to graph readers but not to
queries.  :attr:`staleness` counts exactly those events, and ``absorb()``
resets it to zero.  By default the service **pins the graph's time scale**
at construction (``pin_time_scale=True``): the scaled-time encoding of
historical events then stays fixed as the stream head advances, so answers
for past anchors don't drift between absorbs merely because the timeline
grew.  Events that introduce *new* nodes only become queryable after the
next absorb (which grows the embedding table).

The service enforces stream order at the ingest boundary: a batch reaching
back before the newest ingested event is rejected, matching the loader's
monotonicity contract end to end.

**Durability.** With ``wal_dir=`` every accepted batch is logged to a
:class:`~repro.stream.wal.WriteAheadLog` *before* it touches the graph, and
with ``checkpoint_every=`` the service periodically snapshots the model
atomically (:meth:`checkpoint`), embedding a **stream watermark** — the
recovery cursor — in the archive header and pruning WAL segments the
snapshot made redundant.  :meth:`recover` inverts the pair: reload the
newest checkpoint, restore every service counter from the watermark, and
replay the WAL suffix past it through the ordinary ingest/absorb loop.
Because the checkpoint also carries the training RNG state, the recovered
service is *exactly* the pre-crash one: bitwise-equal event table and
graph, and encode answers identical (within the precision policy) to a run
that never crashed.  Ingest itself is atomic — the whole batch is validated
before the WAL or the graph see any of it, so a poisoned batch leaves zero
side effects.
"""

from __future__ import annotations

import time as _time
from pathlib import Path

import numpy as np

from repro.base import EmbeddingMethod, parse_edge_batch
from repro.storage.base import validate_event_columns
from repro.stream.loader import EventBatch
from repro.stream.metrics import LatencyTracker, ThroughputTracker
from repro.stream.wal import DEFAULT_SEGMENT_BYTES, WALError, WriteAheadLog
from repro.utils import faults
from repro.utils.checkpoint import CheckpointError, load_checkpoint
from repro.utils.validation import check_positive


class OnlineService:
    """Serve time-anchored embeddings while the event stream keeps arriving.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.base.EmbeddingMethod` (``model.graph`` set).
        The service grows this model's graph in place.
    compact_every:
        Buffered-event threshold for graph compaction (passed through to
        ``extend_in_place``); lower = fresher CSR, higher = less re-sort
        work per event.
    train_every:
        When set, ``absorb()`` runs automatically after every
        ``train_every`` ingested batches; ``None`` leaves absorption fully
        manual.
    epochs:
        Incremental epochs per absorb (``partial_fit``'s ``epochs``).
    pin_time_scale:
        Pin the graph's scaled-time mapping to its current span (see the
        staleness model above).  Default on; pass ``False`` to keep the
        legacy live rescaling.
    wal_dir:
        Directory for the write-ahead log.  When set, every batch is
        durably logged before it is applied; ``None`` (default) disables
        logging.  Pointing a fresh service at a non-empty WAL directory is
        rejected on the first ingest — recover from it instead.
    wal_segment_bytes / wal_sync:
        Segment-rotation threshold and fsync policy, passed through to
        :class:`~repro.stream.wal.WriteAheadLog`.
    checkpoint_every:
        When set, :meth:`checkpoint` runs automatically after every
        ``checkpoint_every`` ingested batches (requires
        ``checkpoint_path``).
    checkpoint_path:
        Where :meth:`checkpoint` publishes its atomic snapshot (a ``.npz``
        suffix is appended when missing).
    """

    def __init__(
        self,
        model: EmbeddingMethod,
        *,
        compact_every: int = 4096,
        train_every: int | None = None,
        epochs: int = 1,
        pin_time_scale: bool = True,
        wal_dir=None,
        wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        wal_sync: str = "batch",
        checkpoint_every: int | None = None,
        checkpoint_path=None,
    ):
        if model.graph is None:
            raise RuntimeError(
                "OnlineService wraps a fitted model; call fit() first"
            )
        check_positive("compact_every", compact_every)
        check_positive("epochs", epochs)
        if train_every is not None:
            check_positive("train_every", train_every)
        if checkpoint_every is not None:
            check_positive("checkpoint_every", checkpoint_every)
            if checkpoint_path is None:
                raise ValueError(
                    "checkpoint_every requires checkpoint_path: automatic "
                    "snapshots need somewhere to publish"
                )
        self.model = model
        self.compact_every = int(compact_every)
        self.train_every = None if train_every is None else int(train_every)
        self.epochs = int(epochs)
        self.checkpoint_every = (
            None if checkpoint_every is None else int(checkpoint_every)
        )
        self.checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self.wal_segment_bytes = int(wal_segment_bytes)
        self.wal_sync = str(wal_sync)
        self._wal = (
            None
            if wal_dir is None
            else WriteAheadLog(
                wal_dir,
                segment_max_bytes=self.wal_segment_bytes,
                sync=self.wal_sync,
            )
        )
        self._replaying = False
        if pin_time_scale and model.graph.time_scale is None:
            model.graph.pin_time_scale()
        # The stream head: the graph's edge table is time-sorted, so the
        # newest event is the last row (empty graph = no constraint yet).
        times = model.graph.time
        self._head = float(times[-1]) if times.size else float("-inf")
        self._ingested = 0
        self._batches = 0
        self._absorbs = 0
        self._since_absorb = 0
        self._batches_since_absorb = 0
        self._checkpoints = 0
        self.ingest_throughput = ThroughputTracker()
        self.encode_latency = LatencyTracker()
        self.absorb_seconds = 0.0

    @property
    def graph(self):
        """The model's (growing) temporal graph."""
        return self.model.graph

    @property
    def staleness(self) -> int:
        """Events ingested since the last absorb — invisible to queries."""
        return self._since_absorb

    @property
    def wal(self) -> WriteAheadLog | None:
        """The write-ahead log, or None when durability is off."""
        return self._wal

    # ------------------------------------------------------------------
    # the streaming loop
    # ------------------------------------------------------------------
    def ingest(self, events) -> "OnlineService":
        """Append one micro-batch of events to the model's graph.

        ``events`` is an :class:`~repro.stream.loader.EventBatch` or any
        form :func:`repro.base.parse_edge_batch` accepts.  Empty batches are
        a no-op (but still count toward the ``train_every`` schedule, so a
        quiet time window can trigger a scheduled absorb).

        Ingest is **atomic**: the entire batch is validated — column
        shapes, event invariants, stream order — before the WAL or the
        graph see any of it, so a rejected batch leaves the service bitwise
        unchanged.  With a WAL configured the validated batch is durably
        logged *before* it is applied; a crash between the two replays the
        batch on recovery instead of losing it.
        """
        if isinstance(events, EventBatch):
            events = events.columns()
        src, dst, time, weight = parse_edge_batch(events)
        src, dst, time, weight = validate_event_columns(src, dst, time, weight)
        if time.size:
            t_min = float(time.min())
            if t_min < self._head:
                raise ValueError(
                    f"out-of-order ingest: batch contains time {t_min} "
                    f"earlier than the stream head {self._head}; the online "
                    "service only accepts events at or after the newest "
                    "ingested event"
                )
        faults.crash_point("service.ingest.validated")
        if self._wal is not None and not self._replaying:
            self._wal.append(src, dst, time, weight, seq=self._batches + 1)
        if time.size:
            t0 = _time.perf_counter()
            self.graph.extend_in_place(
                src, dst, time, weight, compact_every=self.compact_every
            )
            self.ingest_throughput.add(time.size, _time.perf_counter() - t0)
            faults.crash_point("service.ingest.applied")
            self._head = float(time.max())
            self._ingested += time.size
            self._since_absorb += time.size
        self._batches += 1
        self._batches_since_absorb += 1
        if (
            self.train_every is not None
            and self._batches_since_absorb >= self.train_every
        ):
            self.absorb()
        if (
            self.checkpoint_every is not None
            and not self._replaying
            and self._batches % self.checkpoint_every == 0
        ):
            self.checkpoint()
        return self

    def absorb(self, epochs: int | None = None) -> "OnlineService":
        """Train the model on every event ingested since the last absorb.

        Runs the buffered-graph ``partial_fit`` path: the graph compacts,
        ``take_fresh()`` hands over the unabsorbed events, and the model
        trains ``epochs`` incremental epochs on exactly those.  A zero-event
        absorb is a no-op (nothing trains, no state changes).
        """
        faults.crash_point("service.absorb.begin")
        t0 = _time.perf_counter()
        self.model.partial_fit(epochs=self.epochs if epochs is None else epochs)
        faults.crash_point("service.absorb.trained")
        self.absorb_seconds += _time.perf_counter() - t0
        if self._since_absorb:
            self._absorbs += 1
        self._since_absorb = 0
        self._batches_since_absorb = 0
        return self

    def encode(self, nodes, at=None) -> np.ndarray:
        """Answer a (timed) time-anchored embedding query.

        Delegates to ``model.encode(nodes, at=at)`` and records the
        wall-clock latency.  Answers reflect the model state as of the last
        absorb (see the staleness model in the module docstring).
        """
        t0 = _time.perf_counter()
        out = self.model.encode(nodes, at=at)
        self.encode_latency.record(_time.perf_counter() - t0)
        return out

    # ------------------------------------------------------------------
    # durability: checkpoint and recover
    # ------------------------------------------------------------------
    def _watermark(self) -> dict:
        """The recovery cursor embedded in a checkpoint header.

        Records everything :meth:`recover` needs that the model archive
        itself does not carry: the stream position (batch/event counts, the
        head time), the absorb bookkeeping (staleness, schedule phase), the
        pinned time scale (``model.save`` persists the graph's *events*,
        not its scaled-time pin), and the service configuration so recovery
        rebuilds an identically-behaving loop.
        """
        scale = self.graph.time_scale
        return {
            "batches": self._batches,
            "events": self._ingested,
            "absorbed_events": self._ingested - self._since_absorb,
            "staleness": self._since_absorb,
            "batches_since_absorb": self._batches_since_absorb,
            "absorbs": self._absorbs,
            "head_time": self._head,
            "time_scale": None if scale is None else [float(s) for s in scale],
            "service": {
                "compact_every": self.compact_every,
                "train_every": self.train_every,
                "epochs": self.epochs,
                "checkpoint_every": self.checkpoint_every,
                "wal_segment_bytes": self.wal_segment_bytes,
                "wal_sync": self.wal_sync,
            },
        }

    def checkpoint(self, path=None) -> Path:
        """Atomically snapshot the model with this service's watermark.

        Publishes via :meth:`repro.base.EmbeddingMethod.save` (temp file +
        ``os.replace``; a crash mid-save leaves the previous snapshot
        intact), then rotates the WAL and prunes every segment the snapshot
        made redundant — recovery only ever needs the WAL suffix past the
        watermark.  Returns the published path.
        """
        target = self.checkpoint_path if path is None else Path(path)
        if target is None:
            raise ValueError(
                "no checkpoint path: pass path= or construct the service "
                "with checkpoint_path="
            )
        faults.crash_point("service.checkpoint.begin")
        published = self.model.save(target, watermark=self._watermark())
        if path is None:
            # Pin the resolved (.npz-suffixed) path so later snapshots
            # replace this one instead of writing a sibling.
            self.checkpoint_path = published
        faults.crash_point("service.checkpoint.published")
        if self._wal is not None:
            self._wal.rotate()
            self._wal.prune(self._batches)
        self._checkpoints += 1
        return published

    @classmethod
    def recover(
        cls, checkpoint_path, wal_dir=None, **overrides
    ) -> "OnlineService":
        """Rebuild the exact pre-crash service from checkpoint + WAL.

        Loads the checkpoint (verifying its checksums), restores every
        counter from the embedded watermark, re-pins the time scale the
        original service ran under, re-marks the checkpoint's unabsorbed
        tail, then replays every WAL record past the watermark through the
        ordinary ingest loop (``train_every`` absorbs fire exactly as they
        originally did; the restored RNG makes them deterministic).  The
        result is indistinguishable from a service that never crashed:
        bitwise-equal event table and graph, identical encode answers
        within the precision policy.

        ``overrides`` replace watermark-recorded service settings
        (``train_every=None`` to stop auto-absorbing, a different
        ``checkpoint_every``, …).  ``checkpoint_path`` for *future*
        snapshots defaults to the recovered archive itself.
        """
        ck = load_checkpoint(checkpoint_path)
        wm = ck.watermark
        if wm is None:
            raise CheckpointError(
                f"{checkpoint_path} is a plain model checkpoint with no "
                "stream watermark; only OnlineService.checkpoint() output "
                "is recoverable (wrap the model in a fresh service instead)"
            )
        model = EmbeddingMethod.load(checkpoint_path)
        scale = wm.get("time_scale")
        if scale is not None:
            model.graph.pin_time_scale(*scale)
        cfg = dict(wm.get("service") or {})
        ckpt_path = overrides.pop("checkpoint_path", Path(checkpoint_path))
        cfg.update(overrides)
        service = cls(
            model,
            pin_time_scale=scale is not None,
            wal_dir=wal_dir,
            checkpoint_path=ckpt_path,
            **cfg,
        )
        service._head = float(wm["head_time"])
        service._ingested = int(wm["events"])
        service._batches = int(wm["batches"])
        service._absorbs = int(wm["absorbs"])
        service._since_absorb = int(wm["staleness"])
        service._batches_since_absorb = int(wm["batches_since_absorb"])
        if service._since_absorb:
            # Ingest only appends at the stream head, so the checkpoint's
            # unabsorbed events are exactly the newest rows of the table.
            model.graph.restore_fresh_tail(service._since_absorb)
        if service._wal is not None:
            wal = service._wal
            if wal.first_seq is not None and wal.first_seq > service._batches + 1:
                raise WALError(
                    f"cannot recover: the WAL begins at batch {wal.first_seq} "
                    f"but the checkpoint's watermark is batch "
                    f"{service._batches} — the segments in between were "
                    "pruned by a newer checkpoint; recover from that one"
                )
            service._replaying = True
            try:
                for record in wal.records(start_seq=service._batches + 1):
                    service.ingest(record.columns())
            finally:
                service._replaying = False
            if wal.last_seq < service._batches:
                # The checkpoint pruned the whole log: re-anchor its
                # sequence counter so post-recovery appends continue the
                # stream instead of restarting at 1.
                wal.fast_forward(service._batches)
        return service

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """One flat snapshot of the service's counters and timings."""
        encode = self.encode_latency.stats()
        return {
            "events_ingested": self._ingested,
            "batches_ingested": self._batches,
            "ingest_events_per_sec": self.ingest_throughput.events_per_sec,
            "absorbs": self._absorbs,
            "absorb_seconds": self.absorb_seconds,
            "staleness_events": self.staleness,
            "pending_events": self.graph.pending_events,
            "compactions": self.graph.compactions,
            "encode_queries": encode["count"],
            "encode_p50_ms": encode["p50_ms"],
            "encode_p99_ms": encode["p99_ms"],
            "encode_mean_ms": encode["mean_ms"],
            "checkpoints": self._checkpoints,
            "wal_segments": 0 if self._wal is None else len(self._wal.segment_paths),
            "wal_disk_bytes": 0 if self._wal is None else self._wal.disk_bytes,
        }

    def close(self) -> None:
        """Release the WAL's open segment handle (idempotent)."""
        if self._wal is not None:
            self._wal.close()

    def __repr__(self) -> str:
        return (
            f"OnlineService({type(self.model).__name__}, "
            f"events={self._ingested}, absorbs={self._absorbs}, "
            f"staleness={self.staleness})"
        )
