"""Time-ordered micro-batching over an event stream.

:class:`EventStreamLoader` turns parallel ``(src, dst, time[, weight])``
columns into an iterator of :class:`EventBatch` micro-batches, split either
by **event count** (every batch has ``batch_size`` events, except possibly
the last) or by **time window** (every batch covers one half-open interval
``[lo, lo + window)`` of the timeline).  The two policies differ at
timestamp ties: count batching slices purely by position, so simultaneous
events may land in different batches; window batching assigns every event
with the same timestamp to the same window, always.

The stream must already be time-ordered — construction *validates* strict
monotonicity (non-decreasing timestamps) and rejects out-of-order input
with the offending position, instead of silently re-sorting and hiding a
broken producer.  :meth:`EventStreamLoader.from_graph` replays any edge-id
subset of a :class:`~repro.graph.temporal_graph.TemporalGraph` (whose edge
table is time-sorted by construction), which is how the replay task and the
streaming benchmark drive a service from a held-out suffix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EventBatch:
    """One micro-batch of temporal edge events (parallel column arrays)."""

    src: np.ndarray
    dst: np.ndarray
    time: np.ndarray
    weight: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.src.size)

    @property
    def num_events(self) -> int:
        return int(self.src.size)

    @property
    def t_lo(self) -> float:
        """Earliest event time in the batch (NaN when empty)."""
        return float(self.time[0]) if self.time.size else float("nan")

    @property
    def t_hi(self) -> float:
        """Latest event time in the batch (NaN when empty)."""
        return float(self.time[-1]) if self.time.size else float("nan")

    def columns(self):
        """The ``(src, dst, time[, weight])`` tuple that
        :func:`repro.base.parse_edge_batch` and
        :meth:`TemporalGraph.extend_in_place` accept directly."""
        if self.weight is None:
            return (self.src, self.dst, self.time)
        return (self.src, self.dst, self.time, self.weight)


class EventStreamLoader:
    """Iterate a validated, time-ordered event stream in micro-batches.

    Parameters
    ----------
    src, dst, time, weight:
        Parallel event columns; ``weight`` is optional.  ``time`` must be
        non-decreasing (see module docstring).
    batch_size:
        Split by event count: every batch holds exactly this many events
        (the final batch may be shorter).  Mutually exclusive with
        ``window``.
    window:
        Split by time span: batch ``i`` holds the events with
        ``t0 + i*window <= t < t0 + (i+1)*window`` where ``t0`` is the first
        event time.  Simultaneous events never split across batches.
    drop_empty:
        Window mode only — skip windows containing no events (default keeps
        them, yielding empty batches, so a replay can represent time passing
        without traffic, e.g. to tick a service's absorb schedule).
    """

    def __init__(
        self,
        src,
        dst,
        time,
        weight=None,
        *,
        batch_size: int | None = None,
        window: float | None = None,
        drop_empty: bool = False,
    ):
        if (batch_size is None) == (window is None):
            raise ValueError(
                "pass exactly one of batch_size= (count batching) or "
                "window= (time-window batching)"
            )
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.time = np.ascontiguousarray(time, dtype=np.float64)
        self.weight = (
            None if weight is None else np.ascontiguousarray(weight, dtype=np.float64)
        )
        sizes = {self.src.size, self.dst.size, self.time.size} | (
            set() if self.weight is None else {self.weight.size}
        )
        if len(sizes) != 1:
            raise ValueError(
                f"event columns disagree on length: src={self.src.size} "
                f"dst={self.dst.size} time={self.time.size}"
                + ("" if self.weight is None else f" weight={self.weight.size}")
            )
        bad = np.flatnonzero(np.diff(self.time) < 0)
        if bad.size:
            i = int(bad[0]) + 1
            raise ValueError(
                f"event stream is out of order: event {i} has time "
                f"{self.time[i]} earlier than its predecessor "
                f"{self.time[i - 1]}; replay events in non-decreasing "
                "time order"
            )
        if batch_size is not None:
            check_positive("batch_size", batch_size)
            self.batch_size: int | None = int(batch_size)
            self.window: float | None = None
            self._slices = [
                (lo, min(lo + self.batch_size, self.time.size))
                for lo in range(0, self.time.size, self.batch_size)
            ]
        else:
            check_positive("window", window)
            self.batch_size = None
            self.window = float(window)
            self._slices = self._window_slices(drop_empty)

    def _window_slices(self, drop_empty: bool) -> list[tuple[int, int]]:
        """Half-open index ranges, one per ``window``-wide time interval."""
        n = self.time.size
        if n == 0:
            return []
        t0 = self.time[0]
        spans = int(np.floor((self.time[-1] - t0) / self.window)) + 1
        # side="left": an event exactly on a boundary opens the next window,
        # and every event sharing its timestamp travels with it.
        cuts = np.searchsorted(
            self.time,
            t0 + self.window * np.arange(1, spans + 1, dtype=np.int64),
            side="left",
        )
        starts = np.concatenate([[0], cuts[:-1]])
        slices = [(int(a), int(b)) for a, b in zip(starts, cuts)]
        if drop_empty:
            slices = [(a, b) for a, b in slices if b > a]
        return slices

    @classmethod
    def from_graph(
        cls,
        graph: TemporalGraph,
        edge_ids=None,
        *,
        batch_size: int | None = None,
        window: float | None = None,
        drop_empty: bool = False,
    ) -> "EventStreamLoader":
        """Replay ``edge_ids`` of ``graph`` (all edges when ``None``).

        Edge ids are sorted ascending first — the graph's edge table is
        time-sorted, so id order *is* replay order — which makes any
        selection (a ``split_recent`` holdout, a boolean-mask result, a
        random sample) valid input.
        """
        if edge_ids is None:
            ids = np.arange(graph.num_edges, dtype=np.int64)
        else:
            ids = np.sort(np.asarray(edge_ids, dtype=np.int64))
        return cls(
            graph.src[ids],
            graph.dst[ids],
            graph.time[ids],
            graph.weight[ids],
            batch_size=batch_size,
            window=window,
            drop_empty=drop_empty,
        )

    @classmethod
    def from_storage(
        cls,
        storage,
        *,
        batch_size: int | None = None,
        window: float | None = None,
        drop_empty: bool = False,
    ) -> "EventStreamLoader":
        """Replay a :class:`~repro.storage.GraphStorage` backend's event log.

        Feeds the store's columns to the loader directly — for a
        memory-mapped store the ``ascontiguousarray`` casts are no-ops on
        the already contiguous maps, so batches are *views into the mapped
        files* and replaying a 10M-event store never materializes it.  The
        monotonicity validation still runs (one streaming pass); a store a
        :class:`~repro.storage.MemmapStorageWriter` finalized is sorted by
        construction and always passes.
        """
        return cls(
            storage.src,
            storage.dst,
            storage.time,
            storage.weight,
            batch_size=batch_size,
            window=window,
            drop_empty=drop_empty,
        )

    @property
    def num_events(self) -> int:
        return int(self.time.size)

    def __len__(self) -> int:
        """Number of micro-batches the iterator will yield."""
        return len(self._slices)

    def __iter__(self):
        for lo, hi in self._slices:
            yield EventBatch(
                src=self.src[lo:hi],
                dst=self.dst[lo:hi],
                time=self.time[lo:hi],
                weight=None if self.weight is None else self.weight[lo:hi],
            )
