"""Streaming ingestion and online serving over temporal graphs.

The online counterpart of the batch pipeline: EHNA aggregates *historical*
neighborhoods, so a trained model can keep serving — and keep learning —
while new events arrive.  Four pieces compose the loop:

- :class:`EventStreamLoader` — validated, time-ordered micro-batching of an
  event stream (by count or by time window), with graph replay;
- the amortized ``TemporalGraph.extend_in_place``/``compact`` path (in
  ``repro.graph.temporal_graph``) — O(batch) appends, deferred re-sort;
- :class:`WriteAheadLog` — crash-safe durability: every batch is logged
  (CRC-checked, segment-rotated) before it is applied, and
  :meth:`OnlineService.recover` replays the suffix past the newest
  checkpoint's watermark for exact recovery;
- :class:`OnlineService` — drives ``ingest -> absorb (partial_fit) ->
  encode`` with staleness tracking, throughput and latency stats, plus
  atomic watermarked checkpoints.

See the "streaming layer" and "durability and recovery" sections of
``docs/architecture.md``, ``examples/streaming_service.py`` and
``examples/crash_recovery.py`` for the end-to-end loops.
"""

from repro.stream.loader import EventBatch, EventStreamLoader
from repro.stream.metrics import LatencyTracker, ThroughputTracker
from repro.stream.service import OnlineService
from repro.stream.wal import (
    WALCorruptionError,
    WALError,
    WALRecord,
    WriteAheadLog,
)

__all__ = [
    "EventBatch",
    "EventStreamLoader",
    "LatencyTracker",
    "OnlineService",
    "ThroughputTracker",
    "WALCorruptionError",
    "WALError",
    "WALRecord",
    "WriteAheadLog",
]
