"""Streaming ingestion and online serving over temporal graphs.

The online counterpart of the batch pipeline: EHNA aggregates *historical*
neighborhoods, so a trained model can keep serving — and keep learning —
while new events arrive.  Three pieces compose the loop:

- :class:`EventStreamLoader` — validated, time-ordered micro-batching of an
  event stream (by count or by time window), with graph replay;
- the amortized ``TemporalGraph.extend_in_place``/``compact`` path (in
  ``repro.graph.temporal_graph``) — O(batch) appends, deferred re-sort;
- :class:`OnlineService` — drives ``ingest -> absorb (partial_fit) ->
  encode`` with staleness tracking, throughput and latency stats.

See the "streaming layer" section of ``docs/architecture.md`` and
``examples/streaming_service.py`` for the end-to-end loop.
"""

from repro.stream.loader import EventBatch, EventStreamLoader
from repro.stream.metrics import LatencyTracker, ThroughputTracker
from repro.stream.service import OnlineService

__all__ = [
    "EventBatch",
    "EventStreamLoader",
    "LatencyTracker",
    "OnlineService",
    "ThroughputTracker",
]
