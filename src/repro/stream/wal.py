"""Append-only write-ahead log of ingested event batches.

The durability contract of the streaming layer: **an event batch is durable
the moment its WAL record is written** (fsynced under ``sync="always"``,
OS-buffered under ``"batch"``), *before* it touches the in-memory graph.  A
killed process loses at most the batch it was mid-write on — and the reader
detects that torn tail and truncates it instead of crashing, so recovery
(:meth:`repro.stream.OnlineService.recover`) replays exactly the durable
prefix.

**Layout.**  A WAL is a directory of segment files::

    wal/
      wal-00000001.log
      wal-00000002.log      <- appends go to the newest segment
      ...

Each segment starts with an 8-byte header (magic ``b"RWAL"`` + little-endian
``u32`` format version) followed by length-prefixed records::

    [u32 payload_len][u32 crc32(payload)][payload]

    payload = [u64 seq][u64 count]
              [src  i64 x count][dst    i64 x count]
              [time f64 x count][weight f64 x count]

``seq`` is the 1-based batch sequence number — the stream watermark a
checkpoint records, and the replay cursor recovery resumes from.  Sequence
numbers are contiguous across segments; :meth:`append` refuses a seq that
does not continue the log (pointing a *fresh* service at a stale WAL
directory is a recovery mistake, not an append).

**Crash anatomy.**  Appends only ever touch the newest segment, so a torn
record (short header, short payload, or CRC mismatch) can only legally
appear at the tail of the *last* segment; there it is truncated on open.
Anywhere else it means bytes rotted after they were durably followed by
more data — that is reported as :class:`WALCorruptionError`, never silently
skipped.  Segment rotation (``segment_max_bytes``, or an explicit
:meth:`rotate` at checkpoint time) bounds file sizes and gives
:meth:`prune` a whole-file unit of reclamation: a checkpoint at watermark
``s`` makes every segment whose records are all ``<= s`` redundant.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.storage.base import validate_event_columns
from repro.utils import faults
from repro.utils.validation import check_positive

__all__ = [
    "WALCorruptionError",
    "WALError",
    "WALRecord",
    "WriteAheadLog",
]

#: First 8 bytes of every segment file: magic + little-endian u32 version.
SEGMENT_MAGIC = b"RWAL"
SEGMENT_VERSION = 1
_SEGMENT_HEADER = SEGMENT_MAGIC + struct.pack("<I", SEGMENT_VERSION)

#: Per-record header: little-endian u32 payload length + u32 CRC32.
_RECORD_HEADER = struct.Struct("<II")
#: Payload prefix: little-endian u64 seq + u64 event count.
_PAYLOAD_PREFIX = struct.Struct("<QQ")
#: Bytes per event in a payload (src i64 + dst i64 + time f64 + weight f64).
_BYTES_PER_EVENT = 32

#: Default segment-rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Valid fsync policies (see :class:`WriteAheadLog`).
SYNC_POLICIES = ("always", "batch", "never")

_SEGMENT_RE = re.compile(r"wal-(\d{8})\.log$")


class WALError(ValueError):
    """The directory or an operation on it is not a valid WAL use."""


class WALCorruptionError(WALError):
    """Bytes rotted somewhere a torn tail cannot explain."""


@dataclass(frozen=True)
class WALRecord:
    """One durably logged event batch (parallel column arrays)."""

    seq: int
    src: np.ndarray
    dst: np.ndarray
    time: np.ndarray
    weight: np.ndarray

    @property
    def num_events(self) -> int:
        return int(self.src.size)

    def columns(self):
        """The ``(src, dst, time, weight)`` tuple ingest paths accept."""
        return (self.src, self.dst, self.time, self.weight)


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"wal-{index:08d}.log"


def _encode_record(seq: int, src, dst, time, weight) -> bytes:
    payload = b"".join(
        (
            _PAYLOAD_PREFIX.pack(int(seq), int(src.size)),
            np.ascontiguousarray(src, dtype=np.int64).tobytes(),
            np.ascontiguousarray(dst, dtype=np.int64).tobytes(),
            np.ascontiguousarray(time, dtype=np.float64).tobytes(),
            np.ascontiguousarray(weight, dtype=np.float64).tobytes(),
        )
    )
    return _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes, where: str) -> WALRecord:
    """Parse a CRC-verified payload; malformed structure is corruption."""
    if len(payload) < _PAYLOAD_PREFIX.size:
        raise WALCorruptionError(f"{where}: payload shorter than its prefix")
    seq, count = _PAYLOAD_PREFIX.unpack_from(payload)
    expected = _PAYLOAD_PREFIX.size + count * _BYTES_PER_EVENT
    if len(payload) != expected:
        raise WALCorruptionError(
            f"{where}: payload of {len(payload)} bytes does not hold "
            f"{count} events (expected {expected})"
        )
    cols = []
    offset = _PAYLOAD_PREFIX.size
    for dtype in (np.int64, np.int64, np.float64, np.float64):
        cols.append(
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
        )
        offset += count * 8
    return WALRecord(int(seq), *cols)


class WriteAheadLog:
    """Append-only, CRC-checked, segment-rotated log of event batches.

    Parameters
    ----------
    path:
        The WAL directory (created if missing).  Opening scans every
        existing segment — verifying CRCs and sequence contiguity,
        truncating a torn tail on the newest segment — so a reopened WAL is
        positioned exactly after its last durable record.
    segment_max_bytes:
        Rotate to a fresh segment once the current one exceeds this many
        bytes (checked before each append, so records never split across
        segments).
    sync:
        Durability of each :meth:`append` — ``"always"`` fsyncs every
        record (survives OS crash), ``"batch"`` (default) flushes to the OS
        per record and fsyncs at rotation/close (survives *process* death,
        the failure mode the fault harness simulates), ``"never"`` leaves
        buffering to the runtime (benchmark baseline).
    """

    def __init__(
        self,
        path,
        *,
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "batch",
    ):
        if sync not in SYNC_POLICIES:
            raise WALError(
                f"unknown sync policy {sync!r}; pick one of {SYNC_POLICIES}"
            )
        check_positive("segment_max_bytes", segment_max_bytes)
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = int(segment_max_bytes)
        self.sync = sync
        self._fh = None  # open handle on the newest segment, or None
        self._fh_size = 0
        self._seg_index = 0  # highest segment index ever used
        self._first_seq: int | None = None  # oldest seq still in the log
        self._last_seq = 0  # newest durable seq (0 = empty log)
        self._truncated_tail: tuple[str, int] | None = None
        self._scan()

    # ------------------------------------------------------------------
    # opening: scan, verify, truncate the torn tail
    # ------------------------------------------------------------------
    def _segment_files(self) -> list[tuple[int, Path]]:
        found = []
        for p in self.path.iterdir():
            m = _SEGMENT_RE.match(p.name)
            if m:
                found.append((int(m.group(1)), p))
        return sorted(found)

    def _scan(self) -> None:
        """Read every segment once: position the log after its durable tail."""
        segments = self._segment_files()
        for pos, (index, seg_path) in enumerate(segments):
            self._seg_index = max(self._seg_index, index)
            is_last = pos == len(segments) - 1
            for record in self._read_segment(
                seg_path, truncate_torn=is_last, start_seq=1
            ):
                if self._last_seq and record.seq != self._last_seq + 1:
                    raise WALCorruptionError(
                        f"{seg_path}: record seq {record.seq} does not follow "
                        f"{self._last_seq}; the log is missing records"
                    )
                if self._first_seq is None:
                    self._first_seq = record.seq
                self._last_seq = max(self._last_seq, record.seq)

    def _read_segment(self, seg_path: Path, truncate_torn: bool, start_seq: int):
        """Yield records of one segment; handle its tail per the crash anatomy.

        A short/garbled *tail* on the newest segment is truncated in place
        (``truncate_torn=True``); any anomaly elsewhere raises
        :class:`WALCorruptionError`.
        """
        data = seg_path.read_bytes()
        if len(data) < len(_SEGMENT_HEADER) or data[:4] != SEGMENT_MAGIC:
            if truncate_torn and (not data or _SEGMENT_HEADER.startswith(data)):
                # Crash during segment creation: a partial header and no
                # records.  Reset the file to a clean empty segment.
                self._note_truncation(seg_path, 0)
                seg_path.write_bytes(_SEGMENT_HEADER)
                return
            raise WALCorruptionError(
                f"{seg_path}: not a WAL segment (bad magic/header)"
            )
        version = struct.unpack_from("<I", data, 4)[0]
        if version != SEGMENT_VERSION:
            raise WALCorruptionError(
                f"{seg_path}: segment version {version} unsupported "
                f"(expected {SEGMENT_VERSION})"
            )
        offset = len(_SEGMENT_HEADER)
        while offset < len(data):
            torn = None
            if offset + _RECORD_HEADER.size > len(data):
                torn = "short record header"
            else:
                length, crc = _RECORD_HEADER.unpack_from(data, offset)
                body_at = offset + _RECORD_HEADER.size
                if body_at + length > len(data):
                    torn = f"payload truncated ({len(data) - body_at} of {length} bytes)"
                else:
                    payload = data[body_at : body_at + length]
                    if zlib.crc32(payload) != crc:
                        torn = "CRC mismatch"
            if torn is not None:
                if not truncate_torn:
                    raise WALCorruptionError(
                        f"{seg_path}: {torn} at offset {offset}, but the "
                        "record is not the tail of the newest segment — "
                        "refusing to drop data that was once durable"
                    )
                self._note_truncation(seg_path, offset)
                with seg_path.open("rb+") as fh:
                    fh.truncate(offset)
                return
            record = _decode_payload(payload, f"{seg_path} @ {offset}")
            if record.seq >= start_seq:
                yield record
            offset = body_at + length

    def _note_truncation(self, seg_path: Path, offset: int) -> None:
        self._truncated_tail = (str(seg_path), int(offset))

    @property
    def truncated_tail(self) -> tuple[str, int] | None:
        """Where the opening scan cut a torn tail (path, offset), or None."""
        return self._truncated_tail

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`append` will assign."""
        return self._last_seq + 1

    @property
    def first_seq(self) -> int | None:
        """Oldest sequence number still in the log (None when empty)."""
        return self._first_seq

    @property
    def last_seq(self) -> int:
        """Newest durable sequence number (0 when the log is empty)."""
        return self._last_seq

    def append(self, src, dst, time, weight=None, seq: int | None = None) -> int:
        """Durably log one validated event batch; returns its seq.

        The batch goes through :func:`~repro.storage.validate_event_columns`
        — the WAL refuses events the graph would refuse, so replay can never
        fail validation.  ``seq`` (when given) must equal :attr:`next_seq`;
        a mismatch means the caller's idea of the stream and this directory
        diverged (e.g. a fresh service pointed at a stale WAL) and raises
        :class:`WALError` before any bytes are written.
        """
        faults.crash_point("wal.append.begin")
        src, dst, time, weight = validate_event_columns(src, dst, time, weight)
        if seq is None:
            seq = self.next_seq
        elif int(seq) != self.next_seq:
            raise WALError(
                f"append out of sequence: the log continues at seq "
                f"{self.next_seq} but {int(seq)} was offered — recover from "
                "this WAL instead of appending to it"
            )
        record = _encode_record(seq, src, dst, time, weight)
        fh = self._writable_segment(len(record))
        faults.torn_write(fh, record, "wal.append.write")
        self._fh_size += len(record)
        if self.sync == "always":
            fh.flush()
            os.fsync(fh.fileno())
        elif self.sync == "batch":
            fh.flush()
        if self._first_seq is None:
            self._first_seq = int(seq)
        self._last_seq = int(seq)
        faults.crash_point("wal.append.synced")
        return int(seq)

    def fast_forward(self, last_seq: int) -> None:
        """Advance :attr:`next_seq` past a fully pruned history.

        A checkpoint at watermark ``s`` may prune *every* segment; reopening
        the directory then finds no records and would restart numbering at
        1, diverging from the stream.  Recovery calls this to re-anchor the
        counter at the watermark.  Only legal on an empty log — on a log
        with records it would manufacture a gap, so it raises instead.
        """
        last_seq = int(last_seq)
        if self._first_seq is not None:
            raise WALError(
                f"cannot fast_forward a log that still holds records "
                f"({self._first_seq}..{self._last_seq}); only an empty "
                "(fully pruned) log can be re-anchored"
            )
        if last_seq < self._last_seq:
            raise WALError(
                f"cannot fast_forward backwards ({self._last_seq} -> {last_seq})"
            )
        self._last_seq = last_seq

    def _writable_segment(self, incoming: int):
        """The open handle appends go to, rotating when full."""
        if (
            self._fh is not None
            and self._fh_size + incoming > self.segment_max_bytes
            and self._fh_size > len(_SEGMENT_HEADER)
        ):
            self.rotate()
        if self._fh is None:
            # Reopen the newest existing segment when it has room, else
            # start a fresh one (also the very first append's path).
            segments = self._segment_files()
            if segments:
                index, seg_path = segments[-1]
                if seg_path.stat().st_size + incoming <= self.segment_max_bytes:
                    self._fh = seg_path.open("ab")
                    self._fh_size = seg_path.stat().st_size
                    return self._fh
            self._open_fresh_segment()
        return self._fh

    def _open_fresh_segment(self) -> None:
        self._seg_index += 1
        seg_path = _segment_path(self.path, self._seg_index)
        self._fh = seg_path.open("xb")
        self._fh.write(_SEGMENT_HEADER)
        self._fh.flush()
        self._fh_size = len(_SEGMENT_HEADER)

    def rotate(self) -> None:
        """Close the current segment (fsyncing it) so it becomes prunable."""
        if self._fh is not None:
            self._fh.flush()
            if self.sync != "never":
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self._fh_size = 0

    def sync_now(self) -> None:
        """Flush and fsync the current segment regardless of policy."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Close the log (idempotent); the directory stays replayable."""
        self.rotate()

    # ------------------------------------------------------------------
    # reading and pruning
    # ------------------------------------------------------------------
    def records(self, start_seq: int = 1):
        """Yield every durable record with ``seq >= start_seq``, in order.

        Reads the segment files (flushing the in-flight one first so the
        iterator always observes the log's own appends).  Torn tails were
        already truncated by the opening scan, so any damage found here —
        including a tail torn *after* open, which only an abandoned
        crashed-mid-append handle can leave — raises
        :class:`WALCorruptionError`; reopen the WAL to repair it.
        """
        if self._fh is not None:
            self._fh.flush()
        for _, seg_path in self._segment_files():
            yield from self._read_segment(
                seg_path, truncate_torn=False, start_seq=int(start_seq)
            )

    def prune(self, upto_seq: int) -> list[Path]:
        """Delete closed segments whose records are all ``<= upto_seq``.

        The unit of reclamation is the whole segment file — a segment
        survives until its *newest* record is covered by a checkpoint.  The
        segment currently open for appends is never pruned (rotate first;
        the service does at checkpoint time).  Returns the deleted paths.
        """
        upto_seq = int(upto_seq)
        removed: list[Path] = []
        open_path = None
        if self._fh is not None:
            open_path = Path(self._fh.name)
        segments = self._segment_files()
        # A segment's records all precede the first record of the next
        # segment, so "max seq <= upto" is decidable from the scan without
        # an index: walk segments oldest-first, re-reading each until one
        # holds a record past the watermark.
        for _, seg_path in segments:
            if open_path is not None and seg_path == open_path:
                break
            last_in_segment = 0
            for record in self._read_segment(
                seg_path, truncate_torn=False, start_seq=1
            ):
                last_in_segment = record.seq
                if record.seq > upto_seq:
                    break
            if last_in_segment > upto_seq:
                break
            seg_path.unlink()
            removed.append(seg_path)
        if removed:
            remaining_first = None
            for record in self.records():
                remaining_first = record.seq
                break
            self._first_seq = remaining_first
        return removed

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def segment_paths(self) -> tuple[Path, ...]:
        """The segment files currently on disk, oldest first."""
        return tuple(p for _, p in self._segment_files())

    @property
    def disk_bytes(self) -> int:
        """Total size of the segment files on disk."""
        return sum(p.stat().st_size for p in self.segment_paths)

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({str(self.path)!r}, segments="
            f"{len(self.segment_paths)}, last_seq={self._last_seq}, "
            f"sync={self.sync!r})"
        )
