# Developer entry points.  Everything runs offline with PYTHONPATH=src;
# no installation step is required.

PY ?= python
export PYTHONPATH := src

.PHONY: test bench bench-train bench-precision bench-all docs-check quickstart lint api-check tables

## Tier-1 test suite (the gate every change must keep green).  Runs the
## protocol-v2 surface check and the (ruff-when-available) linter first.
test: api-check lint
	$(PY) -m pytest -x -q

## Assert every EmbeddingMethod subclass implements the v2 API surface.
api-check:
	$(PY) tools/check_api.py

## ruff check (pinned version; skips cleanly when ruff is unavailable).
lint:
	$(PY) tools/check_lint.py

## Fast walk-engine benchmark (asserts the >=5x batched speedup).
bench:
	$(PY) -m pytest benchmarks/bench_walk_engine.py -q -s

## Train-step benchmark (asserts the >=3x fused-pipeline speedup and the
## fused-vs-baseline loss-trajectory match).
bench-train:
	$(PY) -m pytest benchmarks/bench_train_step.py -q -s

## Precision-policy benchmark (float32 >=1.5x train-step speedup, ~2x
## walk-buffer memory reduction, link-prediction AUC parity).
bench-precision:
	$(PY) -m pytest benchmarks/bench_precision.py -q -s

## Every benchmark, including full experiment regenerations (slow).
bench-all:
	$(PY) -m pytest benchmarks -q -s

## Fail if README code blocks drift from the example files they mirror.
docs-check:
	$(PY) tools/check_docs.py

## Run the 60-second quickstart end to end.
quickstart:
	$(PY) examples/quickstart.py

## Smallest-scale paper-table grid through the task CLI (repro.tasks.Runner:
## one fit per method/dataset, markdown ResultTable on stdout).
tables:
	$(PY) -m repro.tasks --datasets digg --methods LINE EHNA \
		--tasks link_prediction node_classification temporal_ranking \
		--scale 0.05 --dim 8 --repeats 2 --candidates 6 --queries 15 \
		--ehna-epochs 1 --sgns-epochs 1
