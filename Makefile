# Developer entry points.  Everything runs offline with PYTHONPATH=src;
# no installation step is required.

PY ?= python
export PYTHONPATH := src

.PHONY: test test-stream test-faults test-parallel bench bench-train bench-precision bench-streaming bench-scale bench-parallel bench-all docs-check quickstart lint api-check check reprolint lint-report tables

## Tier-1 test suite (the gate every change must keep green).  Runs all
## four static gates first (see `make check`), then the pytest suite.
test: check
	$(PY) -m pytest -x -q

## All four static gates behind one runner, one PASS/FAIL line each:
## check_api.py, check_docs.py, check_lint.py (ruff wrapper), reprolint.
check:
	$(PY) tools/check.py

## The AST-based invariant checker alone (RNG/dtype/seam/durability/API/
## marker contracts; see docs/architecture.md "Static analysis").
reprolint:
	$(PY) -m tools.reprolint src tests

## Machine-readable invariant-debt snapshot, tracked across PRs next to
## the perf numbers.
lint-report:
	$(PY) -m tools.reprolint --format json --output benchmarks/results/lint.json src tests

## Streaming layer suite, *including* the stress-marked property sweeps
## that tier-1 deselects (pytest.ini: addopts = -m "not stress").
test-stream:
	$(PY) -m pytest tests/stream tests/graph/test_extend_buffered.py \
		tests/core/test_stream_regression.py -q -m "stress or not stress"

## Crash-safety suite: the fault-injection sweep (kill the service at every
## injection point, assert exact recovery) plus the recovery edge cases.
## These also run in tier-1; this target is the focused inner loop.
test-faults:
	$(PY) -m pytest -q -m faults

## Worker-pool suite: every parallel-marked test (real spawn pools), not
## just the tier-1 smoke subset.
test-parallel:
	$(PY) -m pytest -q -m parallel tests/parallel tests/storage/test_shared.py

## Assert every EmbeddingMethod subclass implements the v2 API surface.
api-check:
	$(PY) tools/check_api.py

## ruff check (pinned version; skips cleanly when ruff is unavailable).
lint:
	$(PY) tools/check_lint.py

## Fast walk-engine benchmark (asserts the >=5x batched speedup).
bench:
	$(PY) -m pytest benchmarks/bench_walk_engine.py -q -s

## Train-step benchmark (asserts the >=3x fused-pipeline speedup and the
## fused-vs-baseline loss-trajectory match).
bench-train:
	$(PY) -m pytest benchmarks/bench_train_step.py -q -s

## Precision-policy benchmark (float32 >=1.5x train-step speedup, ~2x
## walk-buffer memory reduction, link-prediction AUC parity).
bench-precision:
	$(PY) -m pytest benchmarks/bench_precision.py -q -s

## Streaming benchmark (amortized extend >=2x over per-call re-sort on a
## 50k-event replay; records ingest throughput and encode p50/p99 latency).
bench-streaming:
	$(PY) -m pytest benchmarks/bench_streaming.py -q -s

## Million-event storage benchmark: chunked ingest into the columnar memmap
## store, CSR build, walk engine and train step at 1M events, with peak-RSS
## tracking.  Writes benchmarks/results/scale.txt.  Excluded from tier-1
## (pytest.ini deselects the scale marker).
bench-scale:
	$(PY) -m pytest benchmarks/bench_scale.py -q -s -m scale

## Core-scaling benchmark: sharded walks and sync data-parallel training at
## 1/2/4/8 workers over one shared-memory graph, plus the candidate_cap hub
## delta and the sync bitwise-invariance assertion.  Writes
## benchmarks/results/parallel.txt.  Excluded from tier-1 (scale marker).
bench-parallel:
	$(PY) -m pytest benchmarks/bench_parallel.py -q -s -m scale

## Every benchmark, including full experiment regenerations (slow).
bench-all:
	$(PY) -m pytest benchmarks -q -s -m "scale or not scale"

## Fail if README code blocks drift from the example files they mirror.
docs-check:
	$(PY) tools/check_docs.py

## Run the 60-second quickstart end to end.
quickstart:
	$(PY) examples/quickstart.py

## Smallest-scale paper-table grid through the task CLI (repro.tasks.Runner:
## one fit per method/dataset, markdown ResultTable on stdout).
tables:
	$(PY) -m repro.tasks --datasets digg --methods LINE EHNA \
		--tasks link_prediction node_classification temporal_ranking \
		--scale 0.05 --dim 8 --repeats 2 --candidates 6 --queries 15 \
		--ehna-epochs 1 --sgns-epochs 1
