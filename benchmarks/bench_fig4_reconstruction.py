"""Figure 4 — network reconstruction Precision@P for all methods/datasets.

Paper shape to check (Section V.D): EHNA tops the curves on every dataset;
all methods converge as P approaches the candidate-pair count.

``run_fig4`` is a thin adapter over the task Runner (``repro.tasks``): one
``ReconstructionTask`` per dataset, every method fit once on the full graph.
"""

from repro.experiments import format_fig4, run_fig4
from repro.experiments.fig4 import reconstruction_auc_proxy

SCALE = 0.15
PS = (50, 100, 300, 1000, 3000)


def test_fig4_reconstruction_all_datasets(benchmark, save_result):
    results = benchmark.pedantic(
        run_fig4,
        kwargs={"scale": 0.2, "ps": PS, "seed": 0, "repeats": 2,
                "dim": 32},
        rounds=1,
        iterations=1,
    )
    assert set(results) == {"digg", "yelp", "tmall", "dblp"}
    for ds, per_method in results.items():
        for method, curve in per_method.items():
            assert all(0.0 <= v <= 1.0 for v in curve.values()), (ds, method)
    save_result("fig4_reconstruction", format_fig4(results))

    # Record the scalar summary used in EXPERIMENTS.md shape checks.
    summary = ["", "-- Fig.4 scalar summary (mean precision over grid) --"]
    for ds, per_method in results.items():
        row = {m: reconstruction_auc_proxy(c) for m, c in per_method.items()}
        ranked = sorted(row, key=row.get, reverse=True)
        summary.append(f"{ds:8s} " + " ".join(f"{m}={row[m]:.3f}" for m in ranked))
    save_result("fig4_summary", "\n".join(summary))
