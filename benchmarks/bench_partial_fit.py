"""Streaming-update benchmark: ``partial_fit`` vs. refit-from-scratch.

The serving story of the v2 method protocol hinges on incremental updates
being worth it: when a tranche of edges arrives, extending the graph and
training on the fresh events alone must be *faster* than refitting on the
full history while producing embeddings that are just as useful.

Protocol (three-way chronological split of the DBLP stand-in):

1. the oldest 64% of edges are the **base** history, the next 16% are the
   **stream**, and the newest 20% are held out as future links for the
   Section V.E evaluation (positives vs. never-connected negatives, scored
   by ``-||e_u - e_v||²``);
2. **incremental**: fit EHNA on the base graph, then time
   ``partial_fit(stream)`` with the same epoch budget;
3. **refit**: time a fresh ``fit`` on base+stream;
4. assert the update is faster than the refit and its link-prediction AUC
   matches within noise (``AUC_TOLERANCE``).

Saves the comparison table under ``benchmarks/results/``.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_partial_fit.py -q -s
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import EHNA
from repro.datasets import load
from repro.eval.link_prediction import holdout_pairs, sample_negative_pairs
from repro.eval.metrics import auc_score

CFG = dict(
    dim=16, epochs=2, num_walks=3, walk_length=4, batch_size=32, num_negatives=2
)
#: Incremental and refit runs must land within this AUC gap ("within noise"
#: at this laptop scale, where seed-to-seed spread is of the same order).
AUC_TOLERANCE = 0.15


def _distance_auc(emb: np.ndarray, positives: np.ndarray, negatives: np.ndarray) -> float:
    """AUC of the negative squared distance as a link score."""
    pairs = np.vstack([positives, negatives])
    diff = emb[pairs[:, 0]] - emb[pairs[:, 1]]
    scores = -np.einsum("nd,nd->n", diff, diff)
    labels = np.zeros(pairs.shape[0], dtype=bool)
    labels[: positives.shape[0]] = True
    return auc_score(labels, scores)


def test_partial_fit_beats_refit(save_result):
    full = load("dblp", scale=0.3, seed=5)
    # Newest 20%: future links for evaluation (never shown to either model).
    train_graph, positives = holdout_pairs(full, fraction=0.2)
    negatives = sample_negative_pairs(full, positives.shape[0], rng=0)
    # Next-newest 16% of the full timeline: the streamed tranche.
    base, stream_ids = train_graph.split_recent(0.2)
    stream = (
        train_graph.src[stream_ids],
        train_graph.dst[stream_ids],
        train_graph.time[stream_ids],
        train_graph.weight[stream_ids],
    )

    incremental = EHNA(seed=0, **CFG)
    t0 = time.perf_counter()
    incremental.fit(base)
    base_fit_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    incremental.partial_fit(stream, epochs=CFG["epochs"])
    update_s = time.perf_counter() - t0

    refit = EHNA(seed=0, **CFG)
    t0 = time.perf_counter()
    refit.fit(train_graph)
    refit_s = time.perf_counter() - t0

    assert incremental.graph.num_edges == train_graph.num_edges
    auc_update = _distance_auc(incremental.embeddings(), positives, negatives)
    auc_refit = _distance_auc(refit.embeddings(), positives, negatives)

    lines = [
        "partial_fit vs. refit (Table-1 DBLP stand-in, 64/16/20 split)",
        f"{'path':<22} {'wall-clock':>12} {'AUC':>7}",
        f"{'fit(base)':<22} {base_fit_s * 1e3:>10.0f}ms {'':>7}",
        f"{'partial_fit(stream)':<22} {update_s * 1e3:>10.0f}ms {auc_update:>7.3f}",
        f"{'refit(base+stream)':<22} {refit_s * 1e3:>10.0f}ms {auc_refit:>7.3f}",
        f"update speedup over refit: {refit_s / update_s:.1f}x",
    ]
    save_result("bench_partial_fit", "\n".join(lines))

    assert update_s < refit_s, (
        f"partial_fit ({update_s:.2f}s) must beat refit ({refit_s:.2f}s)"
    )
    assert abs(auc_update - auc_refit) <= AUC_TOLERANCE, (
        f"incremental AUC {auc_update:.3f} drifted from refit AUC "
        f"{auc_refit:.3f} by more than {AUC_TOLERANCE}"
    )
