"""Table V — link prediction on Tmall (bipartite purchases).
``run_link_table`` is a thin adapter over the task Runner (``repro.tasks``):
one ``LinkPredictionTask`` grid cell per method, shared-RNG mode, so the
numbers match the pre-Runner driver bitwise at this fixed seed.
"""

from repro.experiments import format_link_table, run_link_table


def test_table5_link_prediction_tmall(benchmark, save_result):
    table = benchmark.pedantic(
        run_link_table,
        args=("tmall",),
        kwargs={"scale": 0.3, "seed": 0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    assert set(table) == {"Mean", "Hadamard", "Weighted-L1", "Weighted-L2"}
    save_result("table5_tmall", format_link_table("tmall", table))
