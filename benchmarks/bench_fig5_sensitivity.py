"""Figure 5 — EHNA parameter sensitivity on the Yelp-like dataset.

Paper shape to check: F1 improves with margin up to m≈5 (5a); walk length
helps up to l≈10-15 then decays (5b); best p around log2 p = -1 (5c) and best
q around log2 q = +1 (5d).

``run_fig5`` is a thin adapter over the task Runner with the methods axis
carrying the configuration sweep (one EHNA factory per grid point), in
shared-RNG mode for bitwise equivalence with the pre-Runner driver.
"""

from repro.experiments import format_fig5, run_fig5

GRIDS = {
    "margin": [1.0, 3.0, 5.0],
    "walk_length": [2, 6, 10, 15],
    "log2_p": [-1, 0, 1],
    "log2_q": [-1, 0, 1],
}


def test_fig5_parameter_sensitivity(benchmark, save_result):
    results = benchmark.pedantic(
        run_fig5,
        kwargs={"scale": 0.12, "epochs": 2, "seed": 0, "grids": GRIDS},
        rounds=1,
        iterations=1,
    )
    assert set(results) == {"margin", "walk_length", "log2_p", "log2_q"}
    for curve in results.values():
        assert all(0.0 <= f1 <= 1.0 for f1 in curve.values())
    save_result("fig5_sensitivity", format_fig5(results))
