"""Train-step benchmark: the fused aggregation pipeline vs the pre-PR step.

Times full ``EHNA.fit()`` runs on a Table-1 synthetic graph (the DBLP
stand-in family, laptop scale) and reports per-batch step times for

- ``baseline``: the pre-fusion pipeline — three grouped aggregations per
  batch (positives, x-negatives, y-negatives), ``Walk``-object batching
  through ``batch_walks`` and the stepwise per-timestep LSTM graph
  (``one_pass=False, fused_kernels=False``);
- ``fused``: the default pipeline — one grouped aggregation per batch over
  an array-native :class:`WalkBatch` and the single-node BPTT LSTM kernel;
- ``fused+dedup``: additionally collapsing repeated ``(node, anchor)``
  aggregations inside each batch (``dedup_aggregations=True``).

The fused pipeline is required to be at least 3x faster per batch, and —
because the kernel swap is numerically equivalent while the one-pass
grouping only re-buckets batch-norm statistics — the fused loss trajectory
must track the baseline's within a few percent.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_train_step.py -q -s
"""

from __future__ import annotations

import timeit

import numpy as np

from repro.core import EHNA
from repro.datasets import temporal_sbm

# Laptop-scale training config (the test-suite regime, where per-batch
# Python overhead — not BLAS throughput — dominates the stepwise path).
CONFIG = dict(
    dim=16, epochs=1, batch_size=16, num_walks=4, walk_length=6, num_negatives=3
)
REPEATS = 3

MIN_SPEEDUP = 3.0
LOSS_RTOL = 0.15  # fused vs baseline mean epoch loss (statistical, see above)


def _graph():
    return temporal_sbm(num_nodes=60, num_edges=400, seed=3)


def _best_fit_time(graph, **overrides) -> float:
    def run():
        EHNA(seed=0, **CONFIG, **overrides).fit(graph)

    return min(timeit.repeat(run, number=1, repeat=REPEATS))


def _table(rows, num_batches) -> str:
    lines = [
        "Train-step throughput (temporal_sbm 60 nodes / 400 events, "
        f"{CONFIG['epochs']} epoch x {num_batches} batches)",
        f"{'pipeline':<14} {'fit()':>10} {'per batch':>11} {'speedup':>9}",
    ]
    base = rows[0][1]
    for name, total in rows:
        lines.append(
            f"{name:<14} {total:>9.2f}s {total / num_batches * 1e3:>9.1f}ms "
            f"{base / total:>8.2f}x"
        )
    return "\n".join(lines)


def test_train_step_speedup(save_result):
    graph = _graph()
    num_batches = -(-graph.num_edges // CONFIG["batch_size"]) * CONFIG["epochs"]

    t_base = _best_fit_time(graph, one_pass=False, fused_kernels=False)
    t_fused = _best_fit_time(graph)
    t_dedup = _best_fit_time(graph, dedup_aggregations=True)

    rows = [
        ("baseline", t_base),
        ("fused", t_fused),
        ("fused+dedup", t_dedup),
    ]
    save_result("bench_train_step", _table(rows, num_batches))

    assert t_base / t_fused >= MIN_SPEEDUP, (
        f"fused pipeline is only {t_base / t_fused:.2f}x faster "
        f"(required >= {MIN_SPEEDUP}x)"
    )


def test_fused_loss_curve_tracks_baseline(save_result):
    """Equal loss trajectory: exact for the kernel swap, statistical for the
    one-pass regrouping."""
    graph = _graph()
    epochs = 3

    # The kernel swap alone is numerically equivalent — same seed, same
    # losses to float noise.
    fused = EHNA(seed=0, **{**CONFIG, "epochs": epochs}).fit(graph)
    kernel_ref = EHNA(
        seed=0, fused_kernels=False, **{**CONFIG, "epochs": epochs}
    ).fit(graph)
    np.testing.assert_allclose(
        fused.loss_history, kernel_ref.loss_history, rtol=1e-6
    )

    # The full pre-PR baseline differs only statistically (per-call BN
    # batches, RNG consumption order).
    baseline = EHNA(
        seed=0, one_pass=False, fused_kernels=False, **{**CONFIG, "epochs": epochs}
    ).fit(graph)
    lf, lb = np.array(fused.loss_history), np.array(baseline.loss_history)
    rel = np.abs(lf - lb) / np.abs(lb)
    lines = ["Fused vs baseline loss trajectory (per epoch)",
             f"{'epoch':<7} {'fused':>10} {'baseline':>10} {'rel diff':>9}"]
    for e, (a, b, r) in enumerate(zip(lf, lb, rel)):
        lines.append(f"{e:<7} {a:>10.4f} {b:>10.4f} {r:>8.1%}")
    save_result("bench_train_step_loss", "\n".join(lines))
    assert np.all(rel < LOSS_RTOL), f"loss curves diverged: {rel}"
