"""Walk-engine benchmark: batched lockstep vs. the seed per-node loops.

Times walk generation on a Table-1 synthetic graph (the DBLP stand-in) three
ways and saves the comparison table under ``benchmarks/results/``:

- ``sequential``: the pre-engine per-node loops (``walk_sequential``), one
  Python-level step at a time — the seed implementation.
- ``batched``: the same walks advanced in one ``BatchedWalkEngine`` lockstep
  batch.  Required to be at least 5x faster on the temporal family (the
  acceptance bar of the engine PR; in practice ~10x at this size and growing
  with batch width).
- ``cached``: a warm LRU walk cache serving the whole workload.

Also asserts the engine's batch-size-1 bitwise-identity contract so the
speedup is provably not a change in sampling semantics.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_walk_engine.py -q -s
"""

from __future__ import annotations

import timeit

import numpy as np

from repro.datasets import load
from repro.walks import BatchedWalkEngine, TemporalWalker, UniformWalker

NUM_WALKS = 4  # the paper's k, laptop scale
LENGTH = 8
REPEATS = 3

MIN_TEMPORAL_SPEEDUP = 5.0


def _best(fn) -> float:
    return min(timeit.repeat(fn, number=1, repeat=REPEATS))


def _table(rows: list[tuple[str, float, float, float]]) -> str:
    lines = [
        "Walk-engine throughput (Table-1 DBLP stand-in)",
        f"{'family':<10} {'sequential':>12} {'batched':>12} {'speedup':>9}",
    ]
    for name, seq, bat, speedup in rows:
        lines.append(
            f"{name:<10} {seq * 1e3:>10.1f}ms {bat * 1e3:>10.1f}ms {speedup:>8.1f}x"
        )
    return "\n".join(lines)


def test_walk_engine_speedup(save_result):
    graph = load("dblp", scale=1.0, seed=0)
    anchor = graph.time_span[1] + 1.0
    starts = np.repeat(np.arange(graph.num_nodes), NUM_WALKS)
    anchors = np.full(starts.size, anchor)

    temporal = TemporalWalker(graph, p=0.5, q=2.0)
    uniform = UniformWalker(graph, engine=temporal.engine)

    # Correctness first: at batch size 1 the engine must reproduce the seed
    # walker bit for bit, so the timings below compare identical samplers.
    for start in range(0, graph.num_nodes, 7):
        r1 = np.random.default_rng(start)
        r2 = np.random.default_rng(start)
        a = temporal.walk_sequential(start, anchor, LENGTH, r1)
        b = temporal.walk(start, anchor, LENGTH, r2)
        assert a.nodes == b.nodes and a.edge_times == b.edge_times
        assert r1.random() == r2.random()

    t_seq = _best(
        lambda: [
            temporal.walk_sequential(int(v), anchor, LENGTH, np.random.default_rng(0))
            for v in starts
        ]
    )
    t_bat = _best(
        lambda: temporal.engine.temporal(starts, anchors, LENGTH, np.random.default_rng(0))
    )
    u_seq = _best(
        lambda: [
            uniform.walk_sequential(int(v), LENGTH, np.random.default_rng(0))
            for v in starts
        ]
    )
    u_bat = _best(lambda: uniform.engine.uniform(starts, LENGTH, np.random.default_rng(0)))

    rows = [
        ("temporal", t_seq, t_bat, t_seq / t_bat),
        ("uniform", u_seq, u_bat, u_seq / u_bat),
    ]
    save_result(
        "walk_engine",
        _table(rows)
        + f"\n({starts.size} walks of length {LENGTH}, {graph.num_nodes} nodes, "
        f"{graph.num_edges} events; best of {REPEATS})",
    )
    assert t_seq / t_bat >= MIN_TEMPORAL_SPEEDUP, (
        f"batched temporal walks only {t_seq / t_bat:.1f}x faster than the "
        f"seed per-node loop (need >= {MIN_TEMPORAL_SPEEDUP}x)"
    )


def test_walk_cache_hit_throughput(save_result):
    graph = load("dblp", scale=1.0, seed=0)
    anchor = float(np.median(graph.time))
    nodes = np.arange(graph.num_nodes)
    anchors = np.full(nodes.size, anchor)

    cold = BatchedWalkEngine(graph, p=0.5, q=2.0)
    warm = BatchedWalkEngine(graph, p=0.5, q=2.0, cache_size=4 * graph.num_nodes)
    warm.temporal_walk_sets(nodes, anchors, NUM_WALKS, LENGTH, np.random.default_rng(0))

    t_cold = _best(
        lambda: cold.temporal_walk_sets(
            nodes, anchors, NUM_WALKS, LENGTH, np.random.default_rng(0)
        )
    )
    t_warm = _best(
        lambda: warm.temporal_walk_sets(
            nodes, anchors, NUM_WALKS, LENGTH, np.random.default_rng(0)
        )
    )
    save_result(
        "walk_engine_cache",
        "Warm LRU walk cache vs. fresh batched sampling\n"
        f"uncached {t_cold * 1e3:8.1f}ms   cache-hit {t_warm * 1e3:8.1f}ms   "
        f"({t_cold / t_warm:.0f}x, {nodes.size} walk sets)",
    )
    assert t_warm < t_cold
