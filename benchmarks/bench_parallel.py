"""Core-scaling benchmark: sharded walks + sync training over shared memory.

Three measurements over one :class:`~repro.storage.SharedMemoryStorage`
graph, written to ``benchmarks/results/parallel.txt``:

1. **walk scaling** — ``ParallelWalkEngine.temporal_walk_batch`` throughput
   at 1/2/4/8 workers (1 = inline, no pool), same seed everywhere; the
   reassembled batches are asserted bitwise-identical across worker counts
   before any timing is trusted.
2. **train scaling** — sync data-parallel ``EHNA.fit`` steps/s at the same
   worker ladder, with the ``num_workers=0`` inline run as the bitwise
   comparator for the pooled loss trajectories.
3. **candidate_cap delta** — uncapped vs windowed ``_temporal_raw`` gather
   on a hub-heavy graph (the satellite optimization this PR ships).

The report states ``os.cpu_count()`` next to the curve: on a single-core
container the pooled runs measure dispatch overhead, not speedup — the
numbers are recorded as observed, never extrapolated.

Excluded from tier-1 (``scale`` marker).  Run:  make bench-parallel
(or  PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q -s -m scale)
"""

from __future__ import annotations

import os
import time as _time

import numpy as np
import pytest

from repro.core import EHNA
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel import ParallelWalkEngine
from repro.walks.engine import BatchedWalkEngine

pytestmark = [pytest.mark.scale, pytest.mark.parallel]

WORKER_LADDER = (1, 2, 4, 8)

# Walk workload: a mid-size graph with a few hub nodes.
WALK_NODES = 3_000
WALK_EVENTS = 40_000
WALK_STARTS = 4_096
NUM_WALKS = 2
WALK_LENGTH = 8
SHARD_SIZE = 256

# Training workload: small enough that 8 pooled fits stay tractable on one
# core, large enough that a step does real aggregator work.
TRAIN_CFG = dict(
    dim=16,
    epochs=1,
    batch_size=32,
    num_walks=2,
    walk_length=5,
    parallel_shards=8,
)

CAP = 64  # candidate_cap window for the hub-gather delta


def make_graph(num_nodes: int, num_events: int, hub_fraction: float = 0.3, seed: int = 0):
    """A temporal graph where ``hub_fraction`` of events hit 8 hub nodes."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, num_events)
    hubs = rng.random(num_events) < hub_fraction
    src[hubs] = rng.integers(0, 8, int(hubs.sum()))
    dst = rng.integers(0, num_nodes, num_events)
    keep = src != dst
    return TemporalGraph.from_edges(
        src[keep], dst[keep], rng.uniform(0.0, 100.0, int(keep.sum()))
    )


def test_core_scaling_curve(save_result):
    cores = os.cpu_count() or 1
    lines = [
        "Parallel benchmark: sharded walks + sync data-parallel training",
        f"machine: os.cpu_count()={cores} — pooled speedups are bounded by "
        f"physical cores; on {cores} core(s) the ladder below measures "
        + ("real parallelism" if cores >= 2 else "dispatch overhead only"),
        "",
    ]

    # -- 1. walk scaling (+ bitwise invariance gate) -------------------
    graph = make_graph(WALK_NODES, WALK_EVENTS)
    shared = graph.to_shared()
    rng = np.random.default_rng(1)
    starts = rng.integers(0, WALK_NODES, size=WALK_STARTS)
    anchors = np.full(WALK_STARTS, float(graph.time.max()) + 1.0)
    total_walks = WALK_STARTS * NUM_WALKS

    lines.append(
        f"walk scaling: {total_walks:,} temporal walks of length "
        f"{WALK_LENGTH} over {graph.num_edges:,} shared-memory events"
    )
    lines.append(f"{'workers':>8} {'time':>10} {'walks/s':>12} {'vs 1w':>7}")
    reference_batch = None
    base_walk_s = None
    for workers in WORKER_LADDER:
        with ParallelWalkEngine(shared, num_workers=workers, shard_size=SHARD_SIZE) as engine:
            t0 = _time.perf_counter()
            batch = engine.temporal_walk_batch(
                starts, anchors, NUM_WALKS, WALK_LENGTH, seed=11
            )
            elapsed = _time.perf_counter() - t0
        if reference_batch is None:
            reference_batch = batch
            base_walk_s = elapsed
        else:
            # The determinism contract: worker count never changes the draws.
            np.testing.assert_array_equal(batch.ids, reference_batch.ids)
            np.testing.assert_array_equal(batch.valid, reference_batch.valid)
        lines.append(
            f"{workers:>8} {elapsed * 1e3:>8.0f}ms {total_walks / elapsed:>12.0f} "
            f"{base_walk_s / elapsed:>6.2f}x"
        )
    lines.append("")

    # -- 2. sync training scaling (+ trajectory invariance gate) -------
    train_graph = make_graph(200, 2_000, seed=3)
    inline = EHNA(seed=7, num_workers=0, **TRAIN_CFG)
    t0 = _time.perf_counter()
    inline.fit(train_graph)
    inline_s = _time.perf_counter() - t0
    steps = -(-train_graph.num_edges // TRAIN_CFG["batch_size"]) * TRAIN_CFG["epochs"]

    lines.append(
        f"train scaling: sync data-parallel EHNA, {train_graph.num_edges:,} "
        f"edges, {steps} optimizer steps ({TRAIN_CFG['parallel_shards']} shards)"
    )
    lines.append(f"{'workers':>8} {'time':>10} {'steps/s':>12} {'vs inline':>10}")
    lines.append(
        f"{'inline':>8} {inline_s * 1e3:>8.0f}ms {steps / inline_s:>12.2f} "
        f"{'1.00x':>10}"
    )
    for workers in WORKER_LADDER[1:]:
        model = EHNA(seed=7, num_workers=workers, **TRAIN_CFG)
        t0 = _time.perf_counter()
        model.fit(train_graph)
        elapsed = _time.perf_counter() - t0
        # Bitwise: every pooled trajectory equals the inline comparator.
        assert model.loss_history == inline.loss_history
        np.testing.assert_array_equal(model.embeddings(), inline.embeddings())
        lines.append(
            f"{workers:>8} {elapsed * 1e3:>8.0f}ms {steps / elapsed:>12.2f} "
            f"{inline_s / elapsed:>9.2f}x"
        )
    lines.append("pooled trajectories bitwise-equal to inline: yes (asserted)")
    lines.append("")

    # -- 3. candidate_cap hub-gather delta -----------------------------
    hub_rng = np.random.default_rng(5)
    hub_starts = hub_rng.integers(0, 8, size=WALK_STARTS)  # all walks at hubs
    uncapped = BatchedWalkEngine(graph)
    capped = BatchedWalkEngine(graph, candidate_cap=CAP)
    t0 = _time.perf_counter()
    uncapped.temporal_walk_batch(
        hub_starts, anchors, NUM_WALKS, WALK_LENGTH, np.random.default_rng(9)
    )
    uncapped_s = _time.perf_counter() - t0
    t0 = _time.perf_counter()
    capped.temporal_walk_batch(
        hub_starts, anchors, NUM_WALKS, WALK_LENGTH, np.random.default_rng(9)
    )
    capped_s = _time.perf_counter() - t0
    lines.append(
        f"candidate_cap delta: {total_walks:,} hub-anchored walks, "
        f"cap={CAP} vs unbounded history"
    )
    lines.append(
        f"  uncapped {uncapped_s * 1e3:>8.0f}ms   capped {capped_s * 1e3:>8.0f}ms "
        f"  ({uncapped_s / capped_s:.2f}x; different sampler — see the "
        "engine's sampling note)"
    )

    shared.storage.close()
    save_result("parallel", "\n".join(lines))
