"""Micro-benchmarks of the substrates (classic pytest-benchmark timing).

These are not paper experiments; they quantify the building blocks so
regressions in the walk engines, the autograd stack or the samplers are
visible: temporal-walk sampling throughput, one EHNA forward+backward batch,
alias sampling, SGNS steps and the historical-neighborhood query.
"""

import numpy as np

from repro.baselines import SkipGramNS
from repro.core import EHNA, batch_walks
from repro.core.aggregation import TwoLevelAggregator
from repro.datasets import load
from repro.nn import Embedding
from repro.utils import AliasTable
from repro.walks import CTDNEWalker, Node2VecWalker, TemporalWalker


def test_temporal_walk_sampling(benchmark):
    graph = load("dblp", scale=0.3, seed=0)
    walker = TemporalWalker(graph, p=0.5, q=2.0)
    rng = np.random.default_rng(0)
    t_anchor = graph.time_span[1] + 1.0

    def run():
        for start in range(0, graph.num_nodes, 7):
            walker.walk(start, t_anchor, 10, rng)

    benchmark(run)


def test_node2vec_walk_sampling(benchmark):
    graph = load("dblp", scale=0.3, seed=0)
    walker = Node2VecWalker(graph, p=0.5, q=2.0)
    rng = np.random.default_rng(0)

    def run():
        for start in range(0, graph.num_nodes, 7):
            walker.walk(start, 20, rng)

    benchmark(run)


def test_ctdne_walk_sampling(benchmark):
    graph = load("dblp", scale=0.3, seed=0)
    walker = CTDNEWalker(graph)
    rng = np.random.default_rng(0)

    def run():
        for _ in range(40):
            walker.walk_from_edge(int(rng.integers(graph.num_edges)), 20, rng)

    benchmark(run)


def test_aggregator_forward_backward(benchmark):
    graph = load("dblp", scale=0.2, seed=0)
    walker = TemporalWalker(graph)
    rng = np.random.default_rng(0)
    emb = Embedding(graph.num_nodes, 32, rng=0)
    agg = TwoLevelAggregator(32, rng=0)
    t_anchor = graph.time_span[1] + 1.0
    targets = np.arange(16)
    walk_sets = [walker.walks(int(v), t_anchor, 4, 6, rng) for v in targets]
    batch = batch_walks(walk_sets, graph.scale_time)
    params = [emb.weight] + agg.parameters()

    def run():
        z = agg(emb, targets, batch)
        loss = (z * z * z).sum()
        for p in params:
            p.zero_grad()
        loss.backward()

    benchmark(run)


def test_alias_table_sampling(benchmark):
    rng = np.random.default_rng(0)
    table = AliasTable(rng.random(10_000) + 0.01)

    def run():
        table.sample(rng, size=10_000)

    benchmark(run)


def test_sgns_step(benchmark):
    rng = np.random.default_rng(0)
    model = SkipGramNS(2_000, dim=64, seed=0)
    pairs = rng.integers(2_000, size=(4_096, 2)).astype(np.int64)

    def run():
        model.train_pairs(pairs, batch_size=64)

    benchmark(run)


def test_historical_neighborhood_query(benchmark):
    graph = load("digg", scale=0.5, seed=0)
    cut = float(np.median(graph.time))

    def run():
        for v in range(graph.num_nodes):
            graph.events_before(v, cut)

    benchmark(run)


def test_ehna_single_epoch_small(benchmark):
    graph = load("dblp", scale=0.06, seed=0)

    def run():
        EHNA(dim=16, epochs=1, batch_size=32, num_walks=2, walk_length=4,
             num_negatives=2, seed=0).fit(graph)

    benchmark.pedantic(run, rounds=1, iterations=1)
