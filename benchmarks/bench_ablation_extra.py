"""Extra design-choice ablations (DESIGN.md §5) beyond the paper's Table VII.

Four axes the paper motivates but does not ablate in a table:

1. unidirectional (Eq. 6) vs bidirectional (Eq. 7) negative sampling — the
   paper argues bidirectional matters on bipartite (Tmall-like) networks;
2. Euclidean vs dot-product loss geometry (Section IV.D's triangle-inequality
   argument);
3. degree-biased (d^0.75) vs uniform negative sampling;
4. time-decay kernel on vs off in the temporal walk (Eq. 1 with decay=0 keeps
   only the β(p, q) bias).
"""

import numpy as np

from repro.core import EHNA
from repro.datasets import load
from repro.eval import evaluate_operator, prepare_link_prediction

BASE = dict(dim=32, epochs=2, seed=0)

CONFIGS = {
    "full (Eq.7, euclid, d^0.75, decay=1)": {},
    "unidirectional (Eq.6)": {"bidirectional": False},
    "dot-product objective": {"objective": "dot"},
    "uniform negatives": {"negative_power": 0.0},
    "no time-decay kernel": {"decay": 0.0},
}


def run_extra_ablation(scale: float = 0.12, dataset: str = "tmall"):
    graph = load(dataset, scale=scale, seed=0)
    rng = np.random.default_rng(0)
    data = prepare_link_prediction(graph, rng=rng)
    results = {}
    for name, overrides in CONFIGS.items():
        model = EHNA(**{**BASE, **overrides}).fit(data.train_graph)
        metrics = evaluate_operator(
            model.embeddings(), data, "Weighted-L2", repeats=3,
            rng=np.random.default_rng(1),
        )
        results[name] = metrics
    return results


def test_extra_design_ablations(benchmark, save_result):
    results = benchmark.pedantic(run_extra_ablation, rounds=1, iterations=1)
    assert set(results) == set(CONFIGS)
    lines = ["-- Extra ablations (tmall-like, Weighted-L2) --",
             f"{'Configuration':40s} {'AUC':>8s} {'F1':>8s}"]
    for name, m in results.items():
        assert 0.0 <= m["f1"] <= 1.0
        lines.append(f"{name:40s} {m['auc']:>8.4f} {m['f1']:>8.4f}")
    save_result("ablation_extra", "\n".join(lines))
