"""Table VI — link prediction on DBLP (co-authorship).
``run_link_table`` is a thin adapter over the task Runner (``repro.tasks``):
one ``LinkPredictionTask`` grid cell per method, shared-RNG mode, so the
numbers match the pre-Runner driver bitwise at this fixed seed.
"""

from repro.experiments import format_link_table, run_link_table


def test_table6_link_prediction_dblp(benchmark, save_result):
    table = benchmark.pedantic(
        run_link_table,
        args=("dblp",),
        kwargs={"scale": 0.3, "seed": 0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    assert set(table) == {"Mean", "Hadamard", "Weighted-L1", "Weighted-L2"}
    save_result("table6_dblp", format_link_table("dblp", table))
