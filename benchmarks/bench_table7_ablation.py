"""Table VII — ablation study (Weighted-L2 F1 per dataset).

Paper shape to check: full EHNA >= EHNA-NA >= EHNA-RW >= EHNA-SL — each
removed component (attention, temporal walks, two-level stacked aggregation)
costs accuracy, with the single-level LSTM hurting the most.

``run_table7`` is a thin adapter over the task Runner: a single-operator
``LinkPredictionTask`` grid per dataset in shared-RNG mode, so the numbers
match the pre-Runner driver bitwise at this fixed seed.
"""

from repro.experiments import format_table7, run_table7


def test_table7_ablation(benchmark, save_result):
    results = benchmark.pedantic(
        run_table7,
        kwargs={"scale": 0.12, "epochs": 2, "seed": 0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    assert set(results) == {"EHNA", "EHNA-NA", "EHNA-RW", "EHNA-SL"}
    for variant, row in results.items():
        assert set(row) == {"digg", "yelp", "tmall", "dblp"}
    save_result("table7_ablation", format_table7(results))
