"""Table VIII — average training time per epoch.

Paper shape to check: HTNE is the cheapest per epoch; LINE's cost is roughly
flat across datasets (it depends only on its fixed sample budget); EHNA costs
more than HTNE but stays within a small factor of the walk-based baselines.

``run_table8`` is a thin adapter over the task Runner: a ``FitTimingTask``
grid whose metric is the Runner's per-cell ``fit_seconds`` capture.
"""

from repro.experiments import format_table8, run_table8


def test_table8_training_time(benchmark, save_result):
    results = benchmark.pedantic(
        run_table8,
        kwargs={"scale": 0.15, "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert set(results) == {"Node2Vec", "CTDNE", "LINE", "HTNE", "EHNA"}
    for method, row in results.items():
        assert all(v > 0 for v in row.values())
    save_result("table8_efficiency", format_table8(results))

    # Shape check recorded alongside: LINE flat across datasets.
    line = results["LINE"]
    spread = max(line.values()) / max(min(line.values()), 1e-9)
    save_result(
        "table8_shape",
        f"LINE cross-dataset spread (max/min per-epoch time): {spread:.2f}x "
        "(paper: ~1.0x, sample-budget bound)",
    )
