"""Table III — link prediction on Digg (all operators, all methods).

Paper shape to check: EHNA leads most operator/metric rows; temporal methods
(CTDNE, HTNE, EHNA) dominate static LINE/Node2Vec under Hadamard and the
Weighted operators.

``run_link_table`` is a thin adapter over the task Runner (``repro.tasks``):
one ``LinkPredictionTask`` grid cell per method, shared-RNG mode, so the
numbers match the pre-Runner driver bitwise at this fixed seed.
"""

from repro.experiments import format_link_table, run_link_table


def test_table3_link_prediction_digg(benchmark, save_result):
    table = benchmark.pedantic(
        run_link_table,
        args=("digg",),
        kwargs={"scale": 0.3, "seed": 0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    assert set(table) == {"Mean", "Hadamard", "Weighted-L1", "Weighted-L2"}
    for metrics in table.values():
        for row in metrics.values():
            assert 0.0 <= row["EHNA"] <= 1.0
    save_result("table3_digg", format_link_table("digg", table))
