"""Precision-policy benchmark: float32 fast mode vs the float64 reference.

Three measurements on a generated dataset:

- **train step** — full ``EHNA.fit()`` wall time under each policy, same
  seed, same walks (walk sampling stays float64 in both modes, so the two
  runs train on identical batches and neighborhoods).  The fast mode must be
  at least 1.5x faster per batch: BLAS ``sgemm`` vs ``dgemm`` in the fused
  LSTM kernels plus halved memory traffic through every element-wise op.
- **walk-buffer memory** — bytes of the padded :class:`WalkBatch` arrays the
  engine emits (ids + valid + time_sums).  With narrowed ``int32`` ids (the
  graph's index narrowing) and ``float32`` reals, the fast-mode batch is
  half the bytes of the all-64-bit layout; the graph's own CSR narrowing is
  reported alongside.
- **task quality** — link-prediction AUC of the two modes must agree within
  noise (the spread across classifier-split repeats), demonstrating the fast
  mode loses no downstream quality on this workload.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_precision.py -q -s
"""

from __future__ import annotations

import timeit

import numpy as np

from repro.core import EHNA
from repro.datasets import temporal_sbm
from repro.eval.link_prediction import evaluate_operator, prepare_link_prediction
from repro.walks.engine import BatchedWalkEngine

CONFIG = dict(
    dim=32, epochs=1, batch_size=32, num_walks=6, walk_length=8, num_negatives=3
)
REPEATS = 2

MIN_SPEEDUP = 1.5
MIN_MEMORY_RATIO = 1.8  # fast-mode walk batch must be ~2x smaller
AUC_NOISE = 0.05  # absolute AUC agreement bound (split noise is ~0.01-0.03)


def _graph():
    return temporal_sbm(num_nodes=100, num_edges=600, num_communities=4, seed=3)


def _best_fit_time(graph, precision: str) -> float:
    def run():
        EHNA(seed=0, precision=precision, **CONFIG).fit(graph)

    return min(timeit.repeat(run, number=1, repeat=REPEATS))


def test_float32_train_step_speedup(save_result):
    graph = _graph()
    num_batches = -(-graph.num_edges // CONFIG["batch_size"]) * CONFIG["epochs"]
    t64 = _best_fit_time(graph, "float64")
    t32 = _best_fit_time(graph, "float32")
    speedup = t64 / t32

    lines = [
        "Precision-policy train step (temporal_sbm 100 nodes / 600 events, "
        f"dim={CONFIG['dim']}, {num_batches} batches)",
        f"{'policy':<10} {'fit()':>9} {'per batch':>11} {'speedup':>9}",
        f"{'float64':<10} {t64:>8.2f}s {t64 / num_batches * 1e3:>9.1f}ms {1.0:>8.2f}x",
        f"{'float32':<10} {t32:>8.2f}s {t32 / num_batches * 1e3:>9.1f}ms "
        f"{speedup:>8.2f}x",
    ]
    save_result("precision", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"float32 train step is only {speedup:.2f}x faster (required >= "
        f"{MIN_SPEEDUP}x)"
    )


def test_walk_buffer_memory_reduction(save_result):
    graph = _graph()
    nodes = np.arange(graph.num_nodes)
    anchors = np.full(nodes.size, graph.time_span[1] + 1.0)

    # Reference layout: int64 ids + float64 reals (what the pre-policy code
    # always built).  Fast layout: the graph's narrowed ids + float32 reals.
    e32 = BatchedWalkEngine(graph, real_dtype=np.float32)
    batch = e32.temporal_walk_batch(
        nodes, anchors, CONFIG["num_walks"], CONFIG["walk_length"],
        np.random.default_rng(0),
    )
    fast_bytes = batch.nbytes
    rows, cols = batch.ids.shape
    wide_bytes = rows * cols * (8 + 8 + 8)  # int64 ids, float64 valid/sums
    ratio = wide_bytes / fast_bytes

    graph_csr = sum(
        arr.nbytes for arr in graph.incidence_csr()[:2] + (graph.incidence_csr()[4],)
    )
    lines = [
        f"Walk-batch buffer memory ({rows} walks x {cols} steps)",
        f"{'layout':<26} {'bytes':>10}",
        f"{'int64 + float64 (ref)':<26} {wide_bytes:>10}",
        f"{'int32 + float32 (fast)':<26} {fast_bytes:>10}",
        f"reduction: {ratio:.2f}x  (graph index_dtype={graph.index_dtype}, "
        f"CSR index bytes={graph_csr})",
    ]
    with open("benchmarks/results/precision.txt", "a") as fh:
        fh.write("\n" + "\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    assert ratio >= MIN_MEMORY_RATIO, (
        f"walk-batch memory reduction is only {ratio:.2f}x "
        f"(required >= {MIN_MEMORY_RATIO}x)"
    )


def test_float32_auc_within_noise_of_float64(save_result):
    graph = _graph()
    data = prepare_link_prediction(graph, fraction=0.2, rng=np.random.default_rng(7))

    aucs = {}
    for precision in ("float64", "float32"):
        model = EHNA(seed=0, precision=precision, **CONFIG).fit(data.train_graph)
        metrics = evaluate_operator(
            model.embeddings(), data, "Hadamard", repeats=10,
            rng=np.random.default_rng(11),
        )
        aucs[precision] = metrics["auc"]

    gap = abs(aucs["float64"] - aucs["float32"])
    lines = [
        "Link-prediction AUC parity (Hadamard operator, 10 splits)",
        f"{'policy':<10} {'AUC':>7}",
        f"{'float64':<10} {aucs['float64']:>7.3f}",
        f"{'float32':<10} {aucs['float32']:>7.3f}",
        f"gap: {gap:.3f}  (bound: {AUC_NOISE})",
    ]
    with open("benchmarks/results/precision.txt", "a") as fh:
        fh.write("\n" + "\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    assert gap <= AUC_NOISE, (
        f"float32 AUC {aucs['float32']:.3f} deviates from float64 "
        f"{aucs['float64']:.3f} by {gap:.3f} (> {AUC_NOISE})"
    )
