"""Table IV — link prediction on Yelp (all operators, all methods).
``run_link_table`` is a thin adapter over the task Runner (``repro.tasks``):
one ``LinkPredictionTask`` grid cell per method, shared-RNG mode, so the
numbers match the pre-Runner driver bitwise at this fixed seed.
"""

from repro.experiments import format_link_table, run_link_table


def test_table4_link_prediction_yelp(benchmark, save_result):
    table = benchmark.pedantic(
        run_link_table,
        args=("yelp",),
        kwargs={"scale": 0.3, "seed": 0, "repeats": 3},
        rounds=1,
        iterations=1,
    )
    assert set(table) == {"Mean", "Hadamard", "Weighted-L1", "Weighted-L2"}
    save_result("table4_yelp", format_link_table("yelp", table))
