"""Million-event scale benchmark for the columnar memmap event store.

End-to-end at 1M events / 100k nodes, all through the storage seam:

1. **generate+ingest** — :func:`repro.datasets.generators.generate_scaled_events`
   streams chunks through a :class:`~repro.storage.MemmapStorageWriter` into
   an on-disk store (peak memory: one chunk of columns).
2. **CSR build** — ``TemporalGraph.from_storage`` + ``incidence_csr()`` over
   the mapped columns (int32 narrowed indices at this size).
3. **walk engine** — one ``temporal_walk_batch`` lockstep launch, thousands
   of walks against the 1M-event history.
4. **train step** — fused EHNA ``_train_batch`` steps on the memmap-backed
   graph (runtime build + a few optimizer steps, not a full epoch).

Peak RSS is sampled via ``resource.getrusage`` after each stage, so the
table shows where memory actually grows.  Results land in
``benchmarks/results/scale.txt``.

Excluded from tier-1 (``scale`` marker).  Run:  make bench-scale
(or  PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q -s -m scale)
"""

from __future__ import annotations

import resource
import time as _time

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets.generators import generate_scaled_events
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import MemmapStorage

pytestmark = pytest.mark.scale

NUM_EVENTS = 1_000_000
NUM_NODES = 100_000
CHUNK_EVENTS = 250_000
WALK_NODES = 4_096  # lockstep batch: nodes x NUM_WALKS walks at once
NUM_WALKS = 4
WALK_LENGTH = 8
TRAIN_BATCH = 256
TRAIN_STEPS = 3


def _peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB (Linux: ru_maxrss KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_million_event_pipeline(save_result, tmp_path):
    rows: list[tuple[str, str, float]] = []

    def record(stage: str, detail: str, elapsed: float) -> None:
        rows.append((stage, detail, elapsed))

    t0 = _time.perf_counter()
    store = generate_scaled_events(
        tmp_path / "scale_store",
        num_events=NUM_EVENTS,
        num_nodes=NUM_NODES,
        chunk_events=CHUNK_EVENTS,
        seed=0,
    )
    ingest_s = _time.perf_counter() - t0
    assert isinstance(store, MemmapStorage)
    assert store.num_events == NUM_EVENTS
    record("generate+ingest", f"{NUM_EVENTS / ingest_s / 1e6:.2f}M events/s", ingest_s)

    t0 = _time.perf_counter()
    graph = TemporalGraph.from_storage(store)
    indptr, *_ = graph.incidence_csr()
    csr_s = _time.perf_counter() - t0
    assert graph.storage_backend == "memmap"
    assert graph.num_edges == NUM_EVENTS
    assert int(indptr[-1]) == 2 * NUM_EVENTS  # both endpoints indexed
    record("CSR build", f"{NUM_EVENTS / csr_s / 1e6:.2f}M events/s", csr_s)

    model = EHNA(dim=32, num_walks=NUM_WALKS, walk_length=WALK_LENGTH, seed=0)
    t0 = _time.perf_counter()
    model._build_runtime(graph)
    runtime_s = _time.perf_counter() - t0
    record("model runtime build", "sampler + engine bind", runtime_s)

    rng = np.random.default_rng(1)
    starts = rng.integers(0, NUM_NODES, size=WALK_NODES)
    anchors = np.full(WALK_NODES, float(graph.time[-1]) + 1.0)
    t0 = _time.perf_counter()
    batch = model.engine.temporal_walk_batch(
        starts, anchors, NUM_WALKS, WALK_LENGTH, rng
    )
    walks_s = _time.perf_counter() - t0
    total_walks = WALK_NODES * NUM_WALKS
    assert batch.ids.shape[0] == total_walks
    record("walk engine", f"{total_walks / walks_s:.0f} walks/s", walks_s)

    optimizers = model._make_optimizers()
    model.aggregator.train()
    losses = []
    t0 = _time.perf_counter()
    for step in range(TRAIN_STEPS):
        edge_ids = rng.integers(0, NUM_EVENTS, size=TRAIN_BATCH)
        losses.append(model._train_batch(np.sort(edge_ids), optimizers))
    train_s = (_time.perf_counter() - t0) / TRAIN_STEPS
    assert all(np.isfinite(losses))
    record("train step", f"batch={TRAIN_BATCH}, per-step mean", train_s)

    peak_mb = _peak_rss_mb()
    disk_mb = store.disk_bytes / 2**20
    lines = [
        f"Scale benchmark: {NUM_EVENTS:,} events, {NUM_NODES:,} nodes "
        f"(columnar memmap store)",
        f"{'stage':<22} {'detail':<28} {'time':>10}",
    ]
    for stage, detail, elapsed in rows:
        lines.append(f"{stage:<22} {detail:<28} {elapsed * 1e3:>8.0f}ms")
    lines.append(f"store on disk: {disk_mb:.0f} MiB   peak RSS: {peak_mb:.0f} MiB")
    lines.append(f"train losses: {', '.join(f'{x:.4f}' for x in losses)}")
    save_result("scale", "\n".join(lines))
