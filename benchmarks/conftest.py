"""Benchmark-suite helpers.

Every experiment bench runs its driver exactly once (``rounds=1``) — these
are end-to-end experiment regenerations, not micro-benchmarks — and saves the
paper-shaped table text under ``benchmarks/results/`` so EXPERIMENTS.md can
be checked against fresh runs.  The substrate micro-benchmarks in
``bench_substrates.py`` use ordinary multi-round timing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a formatted experiment table to results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")

    return _save
