"""Streaming benchmark: amortized ingestion, WAL cost, serving latency.

Three measurements, saved to ``benchmarks/results/streaming.txt``:

1. **Ingest throughput** — replay a 50k-event synthetic stream into a base
   graph two ways: the legacy per-call ``extend()`` (one full stable-merge
   re-sort + incidence rebuild per micro-batch) vs. the amortized
   ``extend_in_place()`` append buffer (one compaction per ``compact_every``
   events).  The amortized path must win by >=2x, and the resulting graphs
   must be bitwise identical — the speedup is bookkeeping, not semantics.

2. **Durability cost** — the same amortized replay with every batch also
   appended to a :class:`~repro.stream.wal.WriteAheadLog` first (the
   crash-safe ingest path).  The WAL-on replay must stay within
   ``MAX_WAL_SLOWDOWN`` of WAL-off: durability is a tax, not a cliff.

3. **Serving latency while training** — drive an ``OnlineService`` over a
   trained EHNA: ingest micro-batches, absorb every few batches, and issue a
   time-anchored encode query per batch.  Reports sustained ingest
   events/sec and encode p50/p99 latency.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py -q -s
"""

from __future__ import annotations

import shutil
import timeit

import numpy as np

from repro.core import EHNA
from repro.datasets import load
from repro.graph import TemporalGraph
from repro.stream import EventStreamLoader, OnlineService, WriteAheadLog

NUM_NODES = 2000
BASE_EVENTS = 10_000
STREAM_EVENTS = 50_000
BATCH = 250
COMPACT_EVERY = 4096
REPEATS = 2

MIN_SPEEDUP = 2.0
#: Durable ingest (WAL append before apply) may cost at most this factor
#: over the WAL-off amortized path.
MAX_WAL_SLOWDOWN = 2.0


def synthetic_stream(seed=0):
    """Base graph + a 50k-event micro-batched stream after its head."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, NUM_NODES, size=BASE_EVENTS)
    dst = (src + 1 + rng.integers(0, NUM_NODES - 1, size=BASE_EVENTS)) % NUM_NODES
    time = np.sort(rng.uniform(0.0, 1000.0, size=BASE_EVENTS))
    base = TemporalGraph.from_edges(src, dst, time, num_nodes=NUM_NODES)

    s_src = rng.integers(0, NUM_NODES, size=STREAM_EVENTS)
    s_dst = (
        s_src + 1 + rng.integers(0, NUM_NODES - 1, size=STREAM_EVENTS)
    ) % NUM_NODES
    s_time = 1000.0 + np.sort(rng.uniform(0.0, 5000.0, size=STREAM_EVENTS))
    batches = [
        (s_src[lo : lo + BATCH], s_dst[lo : lo + BATCH], s_time[lo : lo + BATCH])
        for lo in range(0, STREAM_EVENTS, BATCH)
    ]
    return base, batches


def replay_per_call(base, batches) -> TemporalGraph:
    g = base
    for src, dst, time in batches:
        g, _ = g.extend(src, dst, time)
    return g


def replay_amortized(base, batches) -> TemporalGraph:
    g = base.copy()
    for src, dst, time in batches:
        g.extend_in_place(src, dst, time, compact_every=COMPACT_EVERY)
    g.compact()
    return g


def replay_amortized_with_wal(base, batches, wal_dir) -> TemporalGraph:
    """The crash-safe ingest path: durably log each batch, then apply it."""
    shutil.rmtree(wal_dir, ignore_errors=True)
    wal = WriteAheadLog(wal_dir, sync="batch")
    g = base.copy()
    for src, dst, time in batches:
        wal.append(src, dst, time)
        g.extend_in_place(src, dst, time, compact_every=COMPACT_EVERY)
    wal.close()
    g.compact()
    return g


def test_streaming_ingest_and_latency(save_result, tmp_path):
    base, batches = synthetic_stream()

    t_legacy = min(
        timeit.repeat(lambda: replay_per_call(base, batches), number=1, repeat=REPEATS)
    )
    t_amortized = min(
        timeit.repeat(lambda: replay_amortized(base, batches), number=1, repeat=REPEATS)
    )
    speedup = t_legacy / t_amortized

    t_wal = min(
        timeit.repeat(
            lambda: replay_amortized_with_wal(base, batches, tmp_path / "wal"),
            number=1,
            repeat=REPEATS,
        )
    )
    wal_slowdown = t_wal / t_amortized
    wal_bytes = sum(
        p.stat().st_size for p in (tmp_path / "wal").glob("wal-*.log")
    )

    # Same events, same graph — bitwise (amortization must be invisible).
    legacy, amortized = replay_per_call(base, batches), replay_amortized(base, batches)
    np.testing.assert_array_equal(amortized.src, legacy.src)
    np.testing.assert_array_equal(amortized.dst, legacy.dst)
    np.testing.assert_array_equal(amortized.time, legacy.time)
    for a, b in zip(amortized.incidence_csr(), legacy.incidence_csr()):
        np.testing.assert_array_equal(a, b)

    # Serving: stream the held-out suffix through a trained EHNA while
    # answering one time-anchored query per micro-batch.
    graph = load("digg", scale=0.3, seed=0)
    train, held = graph.split_recent(0.3)
    model = EHNA(
        dim=16, epochs=1, num_walks=2, walk_length=4, batch_size=128, seed=0
    )
    model.fit(train)
    service = OnlineService(model, compact_every=512, train_every=4)
    query_nodes = np.arange(8)
    for batch in EventStreamLoader.from_graph(graph, held, batch_size=50):
        service.ingest(batch)
        service.encode(query_nodes, at=batch.t_lo)
    service.absorb()
    stats = service.stats()

    lines = [
        "Streaming ingestion + online serving",
        "",
        f"50k-event replay into a {BASE_EVENTS}-edge base graph "
        f"({len(batches)} batches of {BATCH}):",
        f"  per-call extend (full re-sort each batch):  {t_legacy * 1e3:9.1f} ms",
        f"  amortized extend_in_place (compact every {COMPACT_EVERY}): "
        f"{t_amortized * 1e3:9.1f} ms",
        f"  speedup: {speedup:.1f}x  (required >= {MIN_SPEEDUP:.0f}x; "
        "graphs bitwise identical)",
        "",
        "Durable ingest (WAL append before every apply, sync=batch):",
        f"  WAL off: {t_amortized * 1e3:9.1f} ms   "
        f"WAL on: {t_wal * 1e3:9.1f} ms",
        f"  slowdown: {wal_slowdown:.2f}x  "
        f"(required <= {MAX_WAL_SLOWDOWN:.0f}x; "
        f"{wal_bytes / 1e6:.1f} MB logged across "
        f"{len(list((tmp_path / 'wal').glob('wal-*.log')))} segments)",
        "",
        f"Online service (EHNA, digg x0.3, {stats['events_ingested']} streamed "
        f"events, absorb every 4 batches):",
        f"  ingest throughput: {stats['ingest_events_per_sec']:,.0f} events/s",
        f"  absorbs: {stats['absorbs']}  "
        f"(train time {stats['absorb_seconds']:.2f} s)",
        f"  encode latency over {stats['encode_queries']} queries: "
        f"p50 {stats['encode_p50_ms']:.2f} ms, p99 {stats['encode_p99_ms']:.2f} ms, "
        f"mean {stats['encode_mean_ms']:.2f} ms",
    ]
    save_result("streaming", "\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"amortized ingest only {speedup:.2f}x over per-call extend "
        f"(required >= {MIN_SPEEDUP}x)"
    )
    assert wal_slowdown <= MAX_WAL_SLOWDOWN, (
        f"WAL-enabled ingest is {wal_slowdown:.2f}x slower than WAL-off "
        f"(budget <= {MAX_WAL_SLOWDOWN}x)"
    )
    assert stats["encode_p99_ms"] >= stats["encode_p50_ms"] > 0.0
    assert stats["staleness_events"] == 0
