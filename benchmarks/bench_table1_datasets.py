"""Table I — dataset statistics (and generator throughput).

Regenerates the paper's Table I for the synthetic stand-in datasets.  The
benchmark time is the cost of generating all four datasets at the default
laptop scale.
"""

from repro.experiments import format_table1, run_table1


def test_table1_dataset_statistics(benchmark, save_result):
    rows = benchmark.pedantic(
        run_table1, kwargs={"scale": 1.0, "seed": 0}, rounds=1, iterations=1
    )
    assert set(rows) == {"digg", "yelp", "tmall", "dblp"}
    for name, row in rows.items():
        assert row["# nodes"] > 0
        assert row["# temporal edges"] > 0
    save_result("table1_datasets", format_table1(rows))
