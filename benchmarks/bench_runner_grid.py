"""Runner fit-cache benchmark: refit-per-table vs one fit per (method, dataset).

The legacy drivers refit every method for every table they regenerate; the
task Runner fits once per (method, dataset, fit-key) and reuses the trained
model across every task that shares the split.  This bench runs the same
two-task grid (link prediction + temporal ranking over the same 20% holdout)
both ways and records the wall-clock ratio and fit counts under
``benchmarks/results/runner_cache.txt``.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_runner_grid.py -q -s
"""

from repro.experiments.methods import default_methods
from repro.tasks import LinkPredictionTask, Runner, TemporalRankingTask
from repro.utils.timers import Timer

SCALE = 0.2
SEED = 0


def _methods():
    return default_methods(dim=16, seed=SEED, ehna_epochs=1, sgns_epochs=1)


def _tasks():
    return [
        LinkPredictionTask(repeats=2),
        TemporalRankingTask(num_candidates=8, max_queries=20),
    ]


def test_fit_cache_speedup(save_result):
    tasks = _tasks()

    # Refit-per-table: one Runner per task, like the legacy bench scripts.
    with Timer() as t_separate:
        separate = [
            Runner(["digg"], _methods(), [task], scale=SCALE, seed=SEED).run()
            for task in tasks
        ]
    separate_fits = sum(table.num_fits() for table in separate)

    # One grid: both tasks share the holdout fit.
    with Timer() as t_cached:
        combined = Runner(["digg"], _methods(), tasks, scale=SCALE, seed=SEED).run()
    cached_fits = combined.num_fits()

    n_methods = len(_methods())
    assert separate_fits == 2 * n_methods
    assert cached_fits == n_methods  # the acceptance property, at bench scale
    speedup = t_separate.elapsed / max(t_cached.elapsed, 1e-9)

    lines = [
        "-- Runner fit cache: refit-per-table vs shared fits --",
        f"grid: digg x {n_methods} methods x 2 holdout tasks "
        f"(scale={SCALE}, seed={SEED})",
        f"refit-per-table: {separate_fits:2d} fits  {t_separate.elapsed:7.2f}s",
        f"cached Runner:   {cached_fits:2d} fits  {t_cached.elapsed:7.2f}s",
        f"speedup: {speedup:.2f}x  (fit count halved; eval cost unchanged)",
    ]
    save_result("runner_cache", "\n".join(lines))

    # The cached grid must not be slower; the margin stays loose because
    # evaluation time (which caching cannot remove) is part of both runs.
    assert t_cached.elapsed < t_separate.elapsed * 1.05
