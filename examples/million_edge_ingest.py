"""Scale to millions of events with the columnar memmap event store.

Run:  python examples/million_edge_ingest.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets.generators import generate_scaled_events
from repro.graph import TemporalGraph, ingest_edge_list
from repro.walks import BatchedWalkEngine


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ehna_scale_"))

    # 1. Stream 1M synthetic events into an on-disk columnar store.  Events
    #    are generated and written in 250k-event chunks, so peak memory is
    #    one chunk of columns — the same writer handles 10M events.  Each
    #    column lands as one .npy file next to a JSON manifest.
    t0 = time.perf_counter()
    store = generate_scaled_events(
        workdir / "events", num_events=1_000_000, num_nodes=100_000, seed=0
    )
    print(f"ingested {store.num_events:,} events "
          f"in {time.perf_counter() - t0:.1f}s "
          f"({store.disk_bytes / 2**20:.0f} MiB on disk)")

    # 2. Build the graph on top of the store.  Columns are memory-mapped
    #    lazily — nothing is copied into RAM until a column is touched, and
    #    the CSR index is built straight from the maps.
    graph = TemporalGraph.from_storage(store)
    print(f"graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges, "
          f"backend={graph.storage_backend}")

    # 3. Everything above the seam is backend-agnostic: the batched walk
    #    engine (and EHNA.fit, and the streaming loader) run unchanged.
    engine = BatchedWalkEngine(graph)
    rng = np.random.default_rng(1)
    starts = rng.integers(0, graph.num_nodes, size=1024)
    anchors = np.full(1024, graph.time_span[1] + 1.0)
    walks = engine.temporal(starts, anchors, length=8, rng=rng)
    print(f"walked {len(walks)} temporal walks against the 1M-event history")

    # 4. Real datasets take the same path: ingest_edge_list streams a text
    #    edge list (of any size, any timestamp order) into a store without
    #    ever materializing a Python object per row.
    csv = workdir / "tiny.txt"
    csv.write_text("alice bob 1.0\nbob carol 2.0\nalice carol 3.0\n")
    tiny_store, labels = ingest_edge_list(csv, workdir / "tiny_events")
    print(f"ingested {csv.name}: {tiny_store.num_events} events, "
          f"labels={labels}")


if __name__ == "__main__":
    main()
