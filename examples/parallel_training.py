"""Use every core: a shared-memory graph feeding worker pools.

Run:  python examples/parallel_training.py
"""

import numpy as np

from repro.baselines import Node2Vec
from repro.core import EHNA
from repro.datasets import load
from repro.parallel import ParallelWalkEngine


def main() -> None:
    # One shared-memory copy of the event columns + CSR/alias indexes,
    # attachable from any worker process by name.  load(..., shared=True)
    # caches it like any other backend; graph.to_shared() converts an
    # in-memory graph directly.
    graph = load("digg", scale=0.2, seed=7, shared=True)
    print(f"backend={graph.storage_backend} segment={graph.shared_handle.name}")

    # Sharded walk generation.  The shard layout — never the worker count —
    # is the sampling scheme: shard i draws from SeedSequence((seed, i)), so
    # the reassembled batch is bitwise-identical at any pool size
    # (num_workers=0 runs the same shards inline, the comparator the tests
    # pin against).
    starts = np.arange(graph.num_nodes)
    anchors = np.full(starts.size, graph.time_span[1] + 1.0)
    with ParallelWalkEngine(graph, num_workers=2) as engine:
        batch = engine.temporal_walk_batch(starts, anchors, 2, 8, seed=0)
    print(f"walk batch: ids{batch.ids.shape}, bitwise worker-count-invariant")

    # Sync data-parallel EHNA: workers attach the shared graph, train their
    # shards against a broadcast snapshot of the flat parameter vector, and
    # the parent averages gradients into one Adam step — deterministic end
    # to end.
    model = EHNA(dim=16, epochs=2, num_workers=2, parallel_shards=8, seed=0)
    model.fit(graph)
    print(f"EHNA sync x2 workers: final loss {model.loss_history[-1]:.4f}")

    # Hogwild for the skip-gram baselines: lock-free workers race on shared
    # weight tables.  Fastest, but reproducible statistically, not bitwise.
    n2v = Node2Vec(dim=16, num_walks=3, walk_length=8, seed=0, num_workers=2)
    n2v.fit(graph)
    print(f"node2vec hogwild x2 workers: embeddings {n2v.embeddings().shape}")


# Worker pools use the spawn start method, which re-imports this module in
# each child — pool-spawning scripts always need the __main__ guard.
if __name__ == "__main__":
    main()
