"""Who collaborates next? Future link prediction on a co-author network.

Reproduces the Section V.E protocol end to end on the DBLP-like dataset:
hold out the 20% most recent collaborations, train several embedding methods
on the older graph, and ask a logistic-regression classifier to tell future
collaborations from never-collaborating pairs.

Run:  python examples/coauthor_link_prediction.py
"""

import numpy as np

from repro.baselines import CTDNE, HTNE, LINE, Node2Vec
from repro.core import EHNA, EarlyStopping, VerboseCallback
from repro.datasets import load
from repro.eval import evaluate_all_operators, prepare_link_prediction


def main() -> None:
    graph = load("dblp", scale=0.25, seed=3)
    print(f"co-author network: {graph}")

    # Protocol steps 1-2: temporal holdout + balanced negative pairs.
    data = prepare_link_prediction(graph, fraction=0.2, rng=np.random.default_rng(0))
    print(f"predicting {data.positive_pairs.shape[0]} future collaborations "
          f"against as many never-collaborating pairs\n")

    methods = {
        "LINE": LINE(dim=32, samples_per_edge=20, seed=0),
        "Node2Vec": Node2Vec(dim=32, num_walks=6, walk_length=15, epochs=2, seed=0),
        "CTDNE": CTDNE(dim=32, walks_per_node=6, walk_length=15, epochs=2, seed=0),
        "HTNE": HTNE(dim=32, epochs=4, seed=0),
        # The shared trainer's callback hook handles epoch logging and
        # early stopping — no changes to the training loop required.
        "EHNA": EHNA(
            dim=32,
            epochs=5,
            seed=0,
            callbacks=(VerboseCallback(), EarlyStopping(patience=2)),
        ),
    }

    print(f"{'method':10s} {'operator':12s} {'AUC':>7s} {'F1':>7s} "
          f"{'Prec':>7s} {'Rec':>7s}")
    for name, model in methods.items():
        model.fit(data.train_graph)
        results = evaluate_all_operators(
            model.embeddings(), data, repeats=5, rng=np.random.default_rng(1)
        )
        best_op = max(results, key=lambda op: results[op]["auc"])
        m = results[best_op]
        print(f"{name:10s} {best_op:12s} {m['auc']:7.3f} {m['f1']:7.3f} "
              f"{m['precision']:7.3f} {m['recall']:7.3f}")

    print("\n(best Table II operator per method; see benchmarks/ for the "
          "full Tables III-VI grids)")


if __name__ == "__main__":
    main()
