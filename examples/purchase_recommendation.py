"""Temporal embeddings as a recommender on a bipartite purchase network.

Uses the Tmall-like "Double 11" dataset: users and items share one embedding
space, so recommending items to a user is a nearest-neighbor query.  Shows
the bidirectional negative sampling (Eq. 7) that the paper motivates for
exactly this kind of heterogeneous network, and measures hit-rate against
each user's held-out future purchases.

Run:  python examples/purchase_recommendation.py
"""

import numpy as np

from repro.core import EHNA
from repro.datasets import tmall_like


def main() -> None:
    num_users, num_items = 80, 40
    graph = tmall_like(
        num_users=num_users, num_items=num_items, num_purchases=900, seed=5
    )
    print(f"purchase network: {graph} (users + items share one id space)")

    # Temporal holdout: learn on the first 80% of purchases.
    train, held_ids = graph.split_recent(0.2)

    model = EHNA(
        dim=32,
        epochs=3,
        bidirectional=True,  # Eq. 7 — sample negatives on both sides
        seed=0,
    )
    model.fit(train)
    emb = model.embeddings()

    # Future purchases per user (the ground truth to hit).
    future: dict[int, set[int]] = {}
    for e in held_ids:
        u, i = int(graph.src[e]), int(graph.dst[e])
        future.setdefault(u, set()).add(i)

    # Items occupy the ids that appear as purchase targets.
    item_ids = np.unique(graph.dst)
    hits = total = 0
    top_k = 10
    for user, wanted in future.items():
        dists = np.sum((emb[item_ids] - emb[user]) ** 2, axis=1)
        recommended = item_ids[np.argsort(dists)[:top_k]]
        hits += len(set(recommended.tolist()) & wanted)
        total += min(len(wanted), top_k)

    print(f"\nusers with future purchases: {len(future)}")
    print(f"hit rate of top-{top_k} nearest-item recommendations: "
          f"{hits / max(total, 1):.3f}")

    # Popularity baseline for reference.
    pop_order = item_ids[
        np.argsort(-np.array([np.sum(train.dst == i) for i in item_ids]))
    ][:top_k]
    pop_hits = sum(len(set(pop_order.tolist()) & w) for w in future.values())
    print(f"hit rate of most-popular-items baseline:       "
          f"{pop_hits / max(total, 1):.3f}")


if __name__ == "__main__":
    main()
