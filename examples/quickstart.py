"""Quickstart: train EHNA on a temporal network and use the embeddings.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import EHNA
from repro.datasets import load
from repro.eval import reconstruction_precision
from repro.graph import graph_statistics


def main() -> None:
    # 1. A temporal network: the DBLP-like co-authorship stand-in.
    #    (Use repro.graph.load_edge_list to read your own `src dst time` file.)
    graph = load("dblp", scale=0.2, seed=7)
    stats = graph_statistics(graph)
    print(f"graph: {graph}")
    print(f"  mean degree {stats.mean_degree:.1f}, "
          f"{stats.num_static_edges} static edges\n")

    # 2. Train EHNA.  Every knob of Section IV is exposed via keyword
    #    arguments (see repro.core.EHNAConfig for the full list).
    model = EHNA(
        dim=32,          # embedding size (paper: 128)
        num_walks=4,     # k temporal walks per target (paper: 10)
        walk_length=6,   # l steps per walk (paper: 10)
        p=0.5, q=2.0,    # walk bias (paper's optima: log2 p=-1, log2 q=1)
        margin=5.0,      # safety margin m of Eq. 7 (paper: 5)
        epochs=3,
        seed=0,
    )
    model.fit(graph, verbose=True)

    # 3. Use the embeddings: every node now has a unit-norm vector.
    emb = model.embeddings()
    print(f"\nembeddings: {emb.shape}, row norms ~ "
          f"{np.linalg.norm(emb, axis=1).mean():.3f}")

    # 4. Who is closest to the most collaborative author?
    hub = int(np.argmax(graph.degrees()))
    dists = np.sum((emb - emb[hub]) ** 2, axis=1)
    nearest = np.argsort(dists)[1:6]
    print(f"author {hub} (degree {graph.degrees()[hub]}) — "
          f"nearest in embedding space: {nearest.tolist()}")
    print(f"  of which actual co-authors: "
          f"{[int(v) for v in nearest if graph.has_edge(hub, int(v))]}")

    # 5. Sanity: network reconstruction precision (Section V.D).
    precision = reconstruction_precision(emb, graph, ps=[100], rng=0)
    print(f"\nPrecision@100 (network reconstruction): {precision[100]:.3f}")


if __name__ == "__main__":
    main()
