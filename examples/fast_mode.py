"""Fast mode: train EHNA under the float32 precision policy.

Run:  python examples/fast_mode.py
"""

import numpy as np

from repro.core import EHNA
from repro.datasets import load

graph = load("dblp", scale=0.2, seed=7)
print(graph)  # repr reports the (int32-narrowed) memory footprint

# precision="float32" switches the whole substrate — embedding table, LSTM
# kernels, walk batches, optimizer state — to single precision: ~1.7x
# faster train steps and half the walk-buffer memory, with link-prediction
# AUC within noise of the float64 reference (make bench-precision).
model = EHNA(dim=32, epochs=2, precision="float32", seed=0).fit(graph)

emb = model.embeddings()
print(f"embeddings: {emb.shape} {emb.dtype}")

# Serving works identically; answers come back in the policy dtype.
mid = sum(graph.time_span) / 2
print("as-of-midpoint encode:", model.encode(np.arange(3), at=mid).dtype)

# Checkpoints record the policy and refuse cross-precision loads.
path = model.save("ehna_fast.npz")
reloaded = EHNA.load(path)  # EHNA.load(path, precision="float64") would raise
print("reloaded precision:", reloaded.config.precision)
