"""A guided tour of the EHNA ablations (Table VII) on one dataset.

Trains the full model and the three paper ablations — no attention
(EHNA-NA), static walks (EHNA-RW), single-level single-layer LSTM (EHNA-SL)
— on the Yelp-like network and compares link-prediction F1 under the
Weighted-L2 operator, plus two extra design toggles from DESIGN.md §5.

Run:  python examples/ablation_tour.py
"""

import numpy as np

from repro.core import EHNA, ABLATION_VARIANTS
from repro.datasets import load
from repro.eval import evaluate_operator, prepare_link_prediction


def main() -> None:
    graph = load("yelp", scale=0.2, seed=9)
    print(f"review network: {graph}")
    data = prepare_link_prediction(graph, fraction=0.2, rng=np.random.default_rng(0))
    print(f"{data.positive_pairs.shape[0]} future links to predict\n")

    rows: list[tuple[str, float, float]] = []

    def measure(name: str, model: EHNA) -> None:
        model.fit(data.train_graph)
        m = evaluate_operator(
            model.embeddings(), data, "Weighted-L2", repeats=5,
            rng=np.random.default_rng(1),
        )
        rows.append((name, m["auc"], m["f1"]))

    # The paper's Table VII variants.
    for name, factory in ABLATION_VARIANTS.items():
        measure(name, factory(seed=0, dim=32, epochs=2))

    # Extra design toggles (DESIGN.md §5).
    measure("EHNA (Eq.6 unidirectional)", EHNA(seed=0, dim=32, epochs=2,
                                               bidirectional=False))
    measure("EHNA (dot-product loss)", EHNA(seed=0, dim=32, epochs=2,
                                            objective="dot"))

    print(f"{'variant':30s} {'AUC':>7s} {'F1':>7s}")
    for name, auc, f1 in rows:
        print(f"{name:30s} {auc:7.3f} {f1:7.3f}")
    print("\n(paper's Table VII expects full EHNA on top, EHNA-SL at the "
          "bottom; see EXPERIMENTS.md for measured shapes)")


if __name__ == "__main__":
    main()
