"""Regenerate paper-table grid cells through the task Runner.

Any (datasets x methods x tasks) rectangle of Section V runs with one
fit() per method and dataset; tasks sharing a holdout reuse the trained
model.  The same grid is reachable from the shell:

    python -m repro.tasks --datasets digg --methods LINE EHNA \
        --tasks link_prediction temporal_ranking --scale 0.1
"""

from repro.experiments import default_methods
from repro.tasks import LinkPredictionTask, Runner, TemporalRankingTask

methods = default_methods(dim=16, seed=0, ehna_epochs=1, sgns_epochs=1)
tasks = [
    # Tables III-VI protocol: hold out the newest 20% of edges, classify
    # held-out pairs against never-connected ones per Table II operator.
    LinkPredictionTask(repeats=2),
    # New scenario: rank each held-out event's true future neighbor with
    # embeddings anchored at the event time — encode(nodes, at=times).
    TemporalRankingTask(num_candidates=8, max_queries=20),
]

# Both tasks declare the same 20% holdout, so the Runner fits each of the
# five methods exactly once and reuses the model across the two tasks.
runner = Runner(["digg"], methods, tasks, scale=0.1, seed=0)
table = runner.run()

print(table.to_markdown())  # pipe tables + per-cell fit/eval timings
print(f"fits performed: {table.num_fits()} (cells: {len(table)})")
