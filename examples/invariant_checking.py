"""reprolint: the AST-based invariant checker, driven programmatically.

Run:  python examples/invariant_checking.py
CLI:  python -m tools.reprolint src tests   (what `make check` runs)
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tools.reprolint import Engine, default_rules

# 1. Every rule is a small AST visitor with a stated contract.
for rule in default_rules():
    print(f"{rule.rule_id}: {rule.title}")

# 2. Lint a deliberately broken tree: a module under src/repro/nn/ that
#    draws from the process-global RNG stream and allocates a float64
#    buffer where the precision policy wants an explicit dtype.
root = Path(tempfile.mkdtemp())
bad = root / "src" / "repro" / "nn" / "demo.py"
bad.parent.mkdir(parents=True)
bad.write_text(
    "import numpy as np\n"
    "noise = np.random.rand(8)\n"   # RNG001: unseedable global stream
    "buf = np.zeros(8)\n"           # DTYPE001: dtype defaults to float64
)

engine = Engine(root)
for finding in engine.check_paths(["src"]):
    print(f"{finding.path}:{finding.line}: {finding.rule_id} {finding.message}")

# 3. The shipped tree is finding-free (the checked-in baseline is empty);
#    `make test` fails if a change re-introduces any of these patterns.
repo = Path(__file__).resolve().parent.parent
gate = Engine(repo)
live = gate.check_paths(["src", "tests"])
assert live == [], live
print(f"live src/ + tests/ clean across {gate.files_checked} files")
