"""Serve an event stream: ingest micro-batches, absorb, answer queries.

Run:  python examples/streaming_service.py
"""

import numpy as np

from repro.core import EHNA
from repro.datasets import load
from repro.stream import EventStreamLoader, OnlineService


def main() -> None:
    # 1. Train once on the history so far; the last 30% of events becomes
    #    the "future" we will stream in.
    graph = load("digg", scale=0.2, seed=7)
    train, held = graph.split_recent(0.3)
    model = EHNA(dim=16, epochs=2, num_walks=3, walk_length=4, seed=0)
    model.fit(train)

    # 2. Wrap the fitted model in an online service.  It pins the graph's
    #    time scale (past anchors stay stable as the head advances), buffers
    #    ingested events with amortized compaction, and auto-absorbs
    #    (partial_fit) every `train_every` micro-batches.
    service = OnlineService(model, compact_every=512, train_every=4, epochs=1)

    # 3. Replay the held-out suffix as a validated, time-ordered stream of
    #    50-event micro-batches, answering one time-anchored query per batch
    #    while events keep arriving.
    query = np.arange(8)
    for batch in EventStreamLoader.from_graph(graph, held, batch_size=50):
        service.ingest(batch)  # O(batch) append; compaction is amortized
        z = service.encode(query, at=batch.t_lo)  # timed, staleness-tracked
    service.absorb()  # flush: train on whatever is still unabsorbed

    # 4. The service kept score the whole time.
    stats = service.stats()
    print(f"ingested {stats['events_ingested']} events "
          f"at {stats['ingest_events_per_sec']:,.0f} events/s "
          f"({stats['compactions']} compactions)")
    print(f"absorbs: {stats['absorbs']}, staleness now {stats['staleness_events']}")
    print(f"encode latency: p50 {stats['encode_p50_ms']:.2f} ms, "
          f"p99 {stats['encode_p99_ms']:.2f} ms over {stats['encode_queries']} queries")
    assert z.shape == (query.size, model.config.dim)


if __name__ == "__main__":
    main()
