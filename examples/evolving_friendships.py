"""Watching a friendship network evolve through temporal walks.

A tour of the temporal substrate on the Digg-like social network: historical
neighborhoods (Definition 2), the time-decay + p/q walk bias (Eq. 1-2), and
how a node's aggregated embedding drifts as its neighborhood changes —
the phenomenon of the paper's Figures 1-2.

Run:  python examples/evolving_friendships.py
"""

import numpy as np

from repro.core import EHNA
from repro.datasets import digg_like
from repro.walks import TemporalWalker


def main() -> None:
    graph = digg_like(num_users=120, num_edges=900, seed=11)
    print(f"friendship network: {graph}\n")

    hub = int(np.argmax(graph.degrees()))
    t_mid = float(np.median(graph.time))
    t_end = graph.time_span[1] + 1.0

    # --- historical neighborhoods at two points in time -----------------
    walker = TemporalWalker(graph, p=0.5, q=2.0, decay=1.0)
    rng = np.random.default_rng(0)

    def neighborhood(t_anchor: float) -> set[int]:
        nodes: set[int] = set()
        for walk in walker.walks(hub, t_anchor, num_walks=10, length=8, rng=rng):
            nodes.update(walk.nodes[1:])
        return nodes

    early = neighborhood(t_mid)
    late = neighborhood(t_end)
    print(f"user {hub}'s historical neighborhood "
          f"(10 temporal walks, Eq. 1-2):")
    print(f"  anchored mid-timeline : {len(early)} relevant users")
    print(f"  anchored at the end   : {len(late)} relevant users")
    print(f"  overlap               : {len(early & late)} users — the "
          f"neighborhood drifts as friendships form\n")

    # --- decay controls how far back walks reach -------------------------
    for decay in (0.0, 5.0, 50.0):
        w = TemporalWalker(graph, decay=decay)
        ages = []
        for _ in range(200):
            walk = w.walk(hub, t_end, length=4, rng=rng)
            ages.extend(t_end - t for t in walk.edge_times)
        print(f"decay={decay:5.1f}: mean age of traversed edges "
              f"{np.mean(ages):5.2f} years")
    print("  (stronger decay -> walks stay in the recent past, Eq. 1)\n")

    # --- embeddings drift with the network --------------------------------
    # Train on the first half, then on the full graph, and compare the hub's
    # neighbors in embedding space.
    first_half = graph.snapshot(t_mid)
    early_model = EHNA(dim=32, epochs=2, seed=0).fit(first_half)
    late_model = EHNA(dim=32, epochs=2, seed=0).fit(graph)

    def top_neighbors(model: EHNA) -> list[int]:
        emb = model.embeddings()
        d = np.sum((emb - emb[hub]) ** 2, axis=1)
        return [int(v) for v in np.argsort(d)[1:9]]

    early_top = top_neighbors(early_model)
    late_top = top_neighbors(late_model)
    print(f"user {hub}'s nearest embedded neighbors, trained on:")
    print(f"  first half of the timeline: {early_top}")
    print(f"  full timeline             : {late_top}")
    print(f"  churn: {8 - len(set(early_top) & set(late_top))}/8 replaced — "
          "the embedding tracks the evolving neighborhood")


if __name__ == "__main__":
    main()
