"""Serve embeddings at a point in time: encode / save / load / partial_fit.

Run:  python examples/serving_point_in_time.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import EHNA
from repro.datasets import load


def main() -> None:
    # 1. Train once on the history so far.
    graph = load("dblp", scale=0.15, seed=7)
    model = EHNA(dim=16, epochs=2, num_walks=3, walk_length=4, seed=0)
    model.fit(graph)

    # 2. Ask for a node "as of" different moments of its history.  EHNA
    #    aggregates the historical neighborhood *up to* each anchor, so the
    #    same node drifts through embedding space as its history accrues.
    t_lo, t_hi = graph.time_span
    node = int(np.argmax(graph.degrees()))
    anchors = np.linspace(t_lo, t_hi, 4)
    snapshots = model.encode([node] * len(anchors), at=anchors)
    drift = np.linalg.norm(np.diff(snapshots, axis=0), axis=1)
    print(f"node {node} drift between anchors: {np.round(drift, 3).tolist()}")

    # 3. encode() at the default anchor (each node's last event) IS the
    #    embeddings() table — bitwise.
    some = np.arange(5)
    assert np.array_equal(model.encode(some), model.embeddings()[some])

    # 4. Checkpoint, then serve from the restored model: identical answers.
    path = Path(tempfile.mkdtemp()) / "ehna-checkpoint.npz"
    model.save(path)
    served = EHNA.load(path)
    t_mid = 0.5 * (t_lo + t_hi)
    assert np.array_equal(
        served.encode(some, at=t_mid), model.encode(some, at=t_mid)
    )
    print(f"checkpoint round-trips bitwise: {path.name}")

    # 5. New interactions arrive: extend the graph and train incrementally —
    #    no refit from scratch.  New node ids grow the embedding table.
    rng = np.random.default_rng(1)
    n_new = 30
    src = rng.integers(0, graph.num_nodes, size=n_new)
    dst = (src + 1 + rng.integers(0, graph.num_nodes - 1, size=n_new)) % graph.num_nodes
    times = t_hi + 1.0 + np.arange(n_new, dtype=float)
    served.partial_fit((src, dst, times))
    print(
        f"after partial_fit: {served.graph.num_edges} events "
        f"(+{n_new}), embeddings {served.embeddings().shape}"
    )


if __name__ == "__main__":
    main()
