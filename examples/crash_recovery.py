"""Crash-safe serving: WAL + checkpoints, then exact recovery after a kill.

Run:  python examples/crash_recovery.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import EHNA
from repro.datasets import load
from repro.stream import EventStreamLoader, OnlineService

workdir = Path(tempfile.mkdtemp())


def main() -> None:
    # 1. Train once, then serve with durability on: every ingested batch is
    #    logged to the write-ahead log *before* it touches the graph, and
    #    every `checkpoint_every` batches the model is snapshotted
    #    atomically with a stream watermark (the recovery cursor).
    graph = load("digg", scale=0.2, seed=7)
    train, held = graph.split_recent(0.3)
    model = EHNA(dim=16, epochs=2, num_walks=3, walk_length=4, seed=0)
    model.fit(train)
    service = OnlineService(
        model, train_every=4,
        wal_dir=workdir / "wal",
        checkpoint_every=3, checkpoint_path=workdir / "ck.npz",
    )
    service.checkpoint()  # anchor: recovery works from the very first batch

    # 2. Stream until the process "dies" mid-flight.  Batches past the last
    #    checkpoint are not lost — they are sitting in the WAL.
    batches = list(EventStreamLoader.from_graph(graph, held, batch_size=25))
    crash_at = len(batches) - 2
    for batch in batches[:crash_at]:
        service.ingest(batch)
    print(f"'crashed' after {crash_at} batches "
          f"({service.stats()['checkpoints']} checkpoints taken)")

    # 3. Recover: reload the checkpoint (checksum-verified), restore every
    #    counter from its watermark, replay the WAL suffix past it.  The
    #    recovered service is *exactly* the pre-crash one — same graph,
    #    same RNG stream, same answers.
    recovered = OnlineService.recover(workdir / "ck.npz", wal_dir=workdir / "wal")
    assert recovered.stats()["batches_ingested"] == crash_at
    np.testing.assert_array_equal(recovered.graph.time, service.graph.time)

    # 4. Resume the stream where the crash left off and keep serving.
    for batch in batches[crash_at:]:
        recovered.ingest(batch)
    recovered.absorb()
    z = recovered.encode(np.arange(8), at=float(recovered.graph.time[-1]))
    print(f"recovered + resumed: {recovered.stats()['events_ingested']} events, "
          f"staleness {recovered.staleness}, encode shape {z.shape}")


if __name__ == "__main__":
    main()
